//! The per-prefix BGP propagation engine.
//!
//! The dynamics are the classic synchronous path-vector iteration: in
//! round *t+1* every router recomputes its best route from its local
//! originations plus what every session neighbor *exported in round t*.
//! Because exports are a pure function of the neighbors' round-*t* bests,
//! the vector of per-router bests is a complete state: the run either
//! reaches a fixed point (**converged**) or revisits a state
//! (**oscillating** — the paper's route flapping, Figure 2a).
//!
//! On oscillation the engine reports the cycle and every route observed
//! inside it, so coverage can attribute the flap to the configuration
//! lines that keep rewriting the route (the override policies of the
//! incident).
//!
//! Two engines implement the same dynamics:
//!
//! * [`run_prefix_dense`] — the reference engine: every router recomputes
//!   from every session every round.
//! * [`run_prefix_sparse`] — the production engine: a router is
//!   recomputed in round *t+1* only when it held round 0 or a session
//!   neighbor's best changed (as a full [`Route`], derivation included)
//!   in round *t*. A skipped router's inputs are bit-identical to the
//!   previous round, so its recomputation would reproduce its current
//!   best exactly — bests, rejection [`DerivId`]s, and arena first-intern
//!   order all match the dense engine (see `states` below and the
//!   `prop_sparse_sim` suite). The cycle-detection hash is maintained
//!   incrementally (XOR of position-indexed per-router key hashes, with
//!   true key-state verification on a hash hit — the dense engine trusts
//!   the 64-bit hash), and history is a per-router change log instead of
//!   a full `best.clone()` per round.
//!
//! Policy transfers (`export` then `import` over one session in one
//! direction) are pure in the carried route, so the sparse engine
//! memoizes them per simulation run ([`PolicyMemo`]); repeated rounds —
//! a dirty router re-pulling an unchanged neighbor, or a flap cycling
//! through the same states — cost a hash lookup instead of a policy walk.
//! The memo key is the full [`Route`] (not [`RouteKey`]): communities and
//! the derivation id are not protocol-key state but *do* influence the
//! transfer result (community matches; provenance of the output).
//!
//! [`warm_probe`] layers fixed-point reuse on top: given a previously
//! converged outcome for the same dynamics, one synchronous round checks
//! whether that state is still a fixed point, and if so the outcome is
//! reused wholesale. The incremental verifier gates this on a
//! patch-eligibility guard (see `acr-sim`'s `base` module) so provenance
//! is never silently altered.
//!
//! [`RouteKey`]: crate::route::RouteKey

use crate::deriv::{DerivArena, DerivId, DerivKind};
use crate::fxhash::FxHashMap;
use crate::policy::{eval_policy_into, PolicyOutcome};
use crate::route::{select_best, select_best_id, Route, RouteId, RouteInterner};
use crate::session::Session;
use acr_cfg::model::DeviceModel;
use acr_cfg::LineId;
use acr_net_types::{Asn, Prefix, RouterId};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// Base number of extra rounds beyond the network diameter bound before
/// declaring non-convergence without a detected cycle (defensive cap; the
/// cycle detector normally fires first).
pub const MAX_ROUNDS_BASE: usize = 64;

/// Result of simulating one prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixOutcome {
    /// Fixed point reached after `rounds` rounds; per-router best route
    /// (indexed by `RouterId::index()`).
    Converged {
        rounds: usize,
        best: Vec<Option<Route>>,
        /// Negative provenance: derivations of announcements a policy
        /// rejected during the run (see [`DerivKind::ImportDenied`]).
        rejections: Vec<DerivId>,
    },
    /// A state repeated: the prefix flaps. `cycle_len` is the period;
    /// `observed` collects every distinct best route each router held
    /// inside the cycle (provenance roots for the failure).
    Flapping {
        first_seen_round: usize,
        cycle_len: usize,
        observed: Vec<Vec<Route>>,
        /// Negative provenance, as in [`PrefixOutcome::Converged`].
        rejections: Vec<DerivId>,
    },
}

impl PrefixOutcome {
    /// Whether the prefix converged.
    pub fn is_converged(&self) -> bool {
        matches!(self, PrefixOutcome::Converged { .. })
    }

    /// The stable best route of `router`, if converged.
    pub fn best_of(&self, router: RouterId) -> Option<&Route> {
        match self {
            PrefixOutcome::Converged { best, .. } => best.get(router.index())?.as_ref(),
            PrefixOutcome::Flapping { .. } => None,
        }
    }

    /// Derivation roots of everything this outcome depends on — bests for
    /// a converged prefix, every observed route for a flapping one.
    pub fn deriv_roots(&self) -> Vec<DerivId> {
        match self {
            PrefixOutcome::Converged { best, .. } => {
                best.iter().flatten().map(|r| r.deriv).collect()
            }
            PrefixOutcome::Flapping { observed, .. } => {
                observed.iter().flatten().map(|r| r.deriv).collect()
            }
        }
    }

    /// Negative-provenance roots: announcements a policy rejected. Failed
    /// tests fold these into their coverage so SBFL can see deny-type
    /// faults (a rejected route would otherwise leave no trace).
    pub fn rejection_roots(&self) -> &[DerivId] {
        match self {
            PrefixOutcome::Converged { rejections, .. }
            | PrefixOutcome::Flapping { rejections, .. } => rejections,
        }
    }
}

/// Local origination sources for one router and one prefix.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Origination {
    /// (derivation kind, lines) pairs — one per origination reason.
    pub sources: Vec<(DerivKind, Vec<LineId>)>,
}

/// Everything the engine needs per router, precomputed once per network.
pub struct RouterCtx<'a> {
    pub id: RouterId,
    pub model: &'a DeviceModel,
    pub asn: Option<Asn>,
}

/// Which convergence engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvergeEngine {
    /// The reference engine: full recomputation every round.
    Dense,
    /// The worklist engine: recompute only routers whose inputs changed.
    Sparse,
}

static SPARSE_DEFAULT: OnceLock<bool> = OnceLock::new();

impl ConvergeEngine {
    /// The process-wide default: [`ConvergeEngine::Sparse`], unless the
    /// `ACR_SPARSE` environment variable says `0`/`false`/`off`. Read
    /// once (first call wins), like the other `ACR_*` toggles.
    pub fn from_env() -> ConvergeEngine {
        let sparse = *SPARSE_DEFAULT.get_or_init(|| {
            !matches!(
                std::env::var("ACR_SPARSE").ok().as_deref(),
                Some("0") | Some("false") | Some("off")
            )
        });
        if sparse {
            ConvergeEngine::Sparse
        } else {
            ConvergeEngine::Dense
        }
    }
}

/// Work accounting across one or more convergence runs. One "policy
/// eval" is one actual walk of the export→import machinery; attempts the
/// sparse engine serves from its memo are counted in `memo_hits` instead.
/// The dense engine never skips and never memoizes, so on identical
/// dynamics `recomputed_routers` and `policy_evals` bound the sparse
/// engine's from above — `exp_converge` records both sides.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConvergeWork {
    /// Prefixes run to an outcome (warm reuses included).
    pub prefixes: u64,
    /// Synchronous rounds computed (cycle-check-only iterations excluded).
    pub rounds: u64,
    /// Router recomputations performed.
    pub recomputed_routers: u64,
    /// Router recomputations skipped because no session neighbor changed.
    pub skipped_routers: u64,
    /// Export→import evaluations actually performed.
    pub policy_evals: u64,
    /// Evaluations served from the per-run [`PolicyMemo`].
    pub memo_hits: u64,
    /// Warm-start probes attempted ([`warm_probe`]).
    pub warm_probes: u64,
    /// Probes that confirmed the cached fixed point and reused it.
    pub warm_reused: u64,
    /// Probes that failed and fell back to a cold sparse run.
    pub warm_fallbacks: u64,
    /// Sharded multi-prefix runs performed (see `acr-sim`'s `shard`
    /// module). Zero when sharding is disabled.
    pub sharded_runs: u64,
    /// Prefixes routed through sharded workers.
    pub sharded_prefixes: u64,
}

impl ConvergeWork {
    /// Field-wise accumulation.
    pub fn absorb(&mut self, other: &ConvergeWork) {
        self.prefixes += other.prefixes;
        self.rounds += other.rounds;
        self.recomputed_routers += other.recomputed_routers;
        self.skipped_routers += other.skipped_routers;
        self.policy_evals += other.policy_evals;
        self.memo_hits += other.memo_hits;
        self.warm_probes += other.warm_probes;
        self.warm_reused += other.warm_reused;
        self.warm_fallbacks += other.warm_fallbacks;
        self.sharded_runs += other.sharded_runs;
        self.sharded_prefixes += other.sharded_prefixes;
    }
}

/// Result of one policy transfer (export by the sender, then import by
/// the receiver) over one session in one direction, with the accepted
/// route hash-consed into the memo's [`RouteInterner`] — the memoized
/// value is two machine words and `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transfer {
    /// The receiver accepted this route into its candidate set.
    Accepted(RouteId),
    /// A policy denied the announcement (negative provenance).
    Denied(DerivId),
    /// Nothing config-attributable happened (AS-path loop, no BGP).
    Silent,
}

/// An unmemoized transfer result, before the accepted route is interned.
enum Evaluated {
    Accepted(Route),
    Denied(DerivId),
    Silent,
}

/// Per-simulation-run memo over the transfer function, keyed on
/// (session, direction, carried route). The transfer is pure in those
/// inputs — the models and session views are fixed for a run, and the
/// derivation arena is content-addressed, so re-running a transfer
/// returns bit-identical routes and ids. The key must be the full
/// [`Route`]: the route *key* excludes communities (matchable by
/// policies) and the derivation id (flows into the output's provenance),
/// both of which change the result.
///
/// Hits only ever occur within one prefix's run (the prefix is part of
/// the route), where they come from repeated rounds: a dirty router
/// re-pulling an unchanged neighbor, or a flap cycling through the same
/// states.
#[derive(Default)]
pub struct PolicyMemo {
    /// `slots[2 * session_index + direction]`, direction = sender is `a`.
    /// Keyed by [`RouteId`] — id equality is full-route equality within
    /// `routes`, so a lookup is one integer-keyed probe instead of a
    /// deep route hash + comparison. `HashMap` semantics (not hash
    /// quality) carry the correctness argument.
    slots: Vec<FxHashMap<RouteId, MemoEntry>>,
    /// The hash-consed route arena all keys and accepted values live in.
    /// Append-only, so ids survive [`PolicyMemo::begin_run`]; it may only
    /// be shared across runs that share a content-addressed `DerivArena`
    /// (the routes carry `DerivId`s).
    routes: RouteInterner,
    /// Reused per-evaluation buffers for the unmemoized path.
    eval: EvalScratch,
    /// Current run generation; entries remember the last generation that
    /// *attempted* them through [`PolicyMemo::transfer`], which is what
    /// keeps per-run rejection bookkeeping exact when one memo is kept
    /// alive across runs (see [`PolicyMemo::begin_run`]).
    gen: u64,
    /// Routers whose adjacent-session slots were (re)filled during the
    /// last cross-run use while *their* models were patched — those
    /// entries encode that candidate's semantics and must be dropped
    /// before the next run reuses the memo.
    poisoned: Vec<RouterId>,
    /// The session list `slots` is indexed against — kept so the next
    /// [`PolicyMemo::begin_run`] can detect a structurally changed list
    /// and re-home surviving entries by endpoint pair instead of
    /// discarding them (an `Arc` clone, so carrying it is free).
    sessions: Option<Arc<Vec<Session>>>,
}

/// One memoized transfer and the generation that last attempted it.
#[derive(Clone, Copy)]
struct MemoEntry {
    t: Transfer,
    gen: u64,
}

/// Reusable buffers for one policy evaluation: the derivation's line set
/// and parent list, built in place and interned via
/// [`DerivArena::intern_ref`] so a dedup hit allocates nothing.
#[derive(Default)]
struct EvalScratch {
    lines: Vec<LineId>,
    parents: Vec<DerivId>,
}

impl PolicyMemo {
    pub fn new() -> Self {
        PolicyMemo::default()
    }

    fn slot_index(&mut self, si: u32, sender_is_a: bool) -> usize {
        let idx = si as usize * 2 + sender_is_a as usize;
        if self.slots.len() <= idx {
            self.slots.resize_with(idx + 1, FxHashMap::default);
        }
        idx
    }

    /// Prepares a memo that outlives one simulation for its next run.
    /// Bumps the generation (so every surviving entry reads as "not yet
    /// attempted this run" and its denial is re-recorded exactly once)
    /// and drops entries for sessions adjacent to `changed` routers —
    /// plus those poisoned by the previous run's changed routers, whose
    /// entries encode that run's patched semantics. Entries on sessions
    /// between untouched routers are pure in inputs the patch cannot
    /// reach, so they remain bit-exact.
    ///
    /// When `sessions` still lines up with the previous run's list
    /// (same endpoint pairs in the same order — every non-structural
    /// delta), slots are reused in place; any slot whose session content
    /// changed is cleared. A structurally changed list (sessions added,
    /// removed, or reordered) shifts slot indices instead of merely
    /// invalidating entries, so surviving slots are re-homed by endpoint
    /// pair, gated on full content equality of the old and new session.
    ///
    /// The caller must only keep a memo across runs that share a
    /// content-addressed arena and whose unpatched routers share device
    /// models (the incremental verifier's delta-construction path).
    pub fn begin_run(&mut self, sessions: &Arc<Vec<Session>>, changed: &[RouterId]) {
        self.gen = self.gen.wrapping_add(1);
        let prev = self.sessions.replace(Arc::clone(sessions));
        let stale = |r: &RouterId| changed.contains(r) || self.poisoned.contains(r);
        let aligned = prev.as_ref().is_some_and(|p| {
            Arc::ptr_eq(p, sessions)
                || (p.len() == sessions.len()
                    && p.iter()
                        .zip(sessions.iter())
                        .all(|(x, y)| x.a == y.a && x.b == y.b))
        });
        if aligned {
            let prev = prev.expect("aligned implies a previous list");
            let same_arc = Arc::ptr_eq(&prev, sessions);
            for (si, s) in sessions.iter().enumerate() {
                if stale(&s.a) || stale(&s.b) || (!same_arc && prev[si] != *s) {
                    for idx in [si * 2, si * 2 + 1] {
                        if let Some(slot) = self.slots.get_mut(idx) {
                            slot.clear();
                        }
                    }
                }
            }
        } else {
            let mut old_slots = std::mem::take(&mut self.slots);
            self.slots
                .resize_with(sessions.len() * 2, FxHashMap::default);
            if let Some(prev) = prev {
                let mut by_pair: FxHashMap<(RouterId, RouterId), usize> = FxHashMap::default();
                for (osi, s) in prev.iter().enumerate() {
                    by_pair.insert((s.a, s.b), osi);
                }
                for (si, s) in sessions.iter().enumerate() {
                    if stale(&s.a) || stale(&s.b) {
                        continue;
                    }
                    let Some(&osi) = by_pair.get(&(s.a, s.b)) else {
                        continue;
                    };
                    if prev[osi] == *s && old_slots.len() > osi * 2 + 1 {
                        self.slots[si * 2] = std::mem::take(&mut old_slots[osi * 2]);
                        self.slots[si * 2 + 1] = std::mem::take(&mut old_slots[osi * 2 + 1]);
                    }
                }
            }
        }
        self.poisoned.clear();
        self.poisoned.extend_from_slice(changed);
    }

    /// The memoized transfer. Returns `(first, result)` — `first` is true
    /// when this (session, direction, route) was not yet attempted *this
    /// run* (the caller records denials into its rejection set exactly
    /// once per run, on that first attempt; the dense engine's duplicate
    /// pushes dedup away in the final sort).
    #[allow(clippy::too_many_arguments)]
    fn transfer(
        &mut self,
        si: u32,
        receiver: &RouterCtx<'_>,
        sender: &RouterCtx<'_>,
        session: &Session,
        best: RouteId,
        arena: &mut DerivArena,
        work: &mut ConvergeWork,
    ) -> (bool, Transfer) {
        let idx = self.slot_index(si, session.a == sender.id);
        let gen = self.gen;
        if let Some(e) = self.slots[idx].get_mut(&best) {
            work.memo_hits += 1;
            let first = e.gen != gen;
            e.gen = gen;
            return (first, e.t);
        }
        work.policy_evals += 1;
        let t = match transfer(
            receiver,
            sender,
            session,
            self.routes.get(best),
            arena,
            &mut self.eval,
        ) {
            Evaluated::Accepted(r) => Transfer::Accepted(self.routes.intern_owned(r)),
            Evaluated::Denied(d) => Transfer::Denied(d),
            Evaluated::Silent => Transfer::Silent,
        };
        self.slots[idx].insert(best, MemoEntry { t, gen });
        (true, t)
    }

    /// A transfer lookup for the warm probe: reuses (and fills) the memo
    /// **without** stamping the current generation. Probe evaluations do
    /// not record rejections, so an entry the probe touches must still
    /// read as unattempted to a subsequent cold run of the same run
    /// generation — otherwise that run's first-evaluation denial
    /// bookkeeping would be suppressed.
    #[allow(clippy::too_many_arguments)]
    fn probe_transfer(
        &mut self,
        si: u32,
        receiver: &RouterCtx<'_>,
        sender: &RouterCtx<'_>,
        session: &Session,
        best: RouteId,
        arena: &mut DerivArena,
        work: &mut ConvergeWork,
    ) -> Transfer {
        let idx = self.slot_index(si, session.a == sender.id);
        if let Some(e) = self.slots[idx].get(&best) {
            work.memo_hits += 1;
            return e.t;
        }
        work.policy_evals += 1;
        let t = match transfer(
            receiver,
            sender,
            session,
            self.routes.get(best),
            arena,
            &mut self.eval,
        ) {
            Evaluated::Accepted(r) => Transfer::Accepted(self.routes.intern_owned(r)),
            Evaluated::Denied(d) => Transfer::Denied(d),
            Evaluated::Silent => Transfer::Silent,
        };
        let gen = self.gen.wrapping_sub(1);
        self.slots[idx].insert(best, MemoEntry { t, gen });
        t
    }

    /// Merges a shard worker's memo into this one. `deriv_map` translates
    /// the worker arena's derivation ids (worker arenas start empty, so
    /// the map is total) into the caller's arena. Slots are visited in
    /// index order and entries in worker-route-id order, so given
    /// deterministic workers the merged interner contents are
    /// deterministic too. Existing entries win: the memo is semantically
    /// transparent, so which copy survives only affects wall time.
    pub(crate) fn absorb_worker(&mut self, worker: &PolicyMemo, deriv_map: &[DerivId]) {
        let gen = self.gen;
        for (idx, slot) in worker.slots.iter().enumerate() {
            if slot.is_empty() {
                continue;
            }
            if self.slots.len() <= idx {
                self.slots.resize_with(idx + 1, FxHashMap::default);
            }
            let mut keys: Vec<RouteId> = slot.keys().copied().collect();
            keys.sort_unstable();
            for k in keys {
                let entry = slot[&k];
                let mut key_route = worker.routes.get(k).clone();
                key_route.deriv = deriv_map[key_route.deriv.0 as usize];
                let key_id = self.routes.intern_owned(key_route);
                if self.slots[idx].contains_key(&key_id) {
                    continue;
                }
                let t = match entry.t {
                    Transfer::Accepted(rid) => {
                        let mut r = worker.routes.get(rid).clone();
                        r.deriv = deriv_map[r.deriv.0 as usize];
                        Transfer::Accepted(self.routes.intern_owned(r))
                    }
                    Transfer::Denied(d) => Transfer::Denied(deriv_map[d.0 as usize]),
                    Transfer::Silent => Transfer::Silent,
                };
                self.slots[idx].insert(key_id, MemoEntry { t, gen });
            }
        }
    }
}

/// One unmemoized transfer: `sender` exports `best` over `session`,
/// `receiver` imports the result.
fn transfer(
    receiver: &RouterCtx<'_>,
    sender: &RouterCtx<'_>,
    session: &Session,
    best: &Route,
    arena: &mut DerivArena,
    scratch: &mut EvalScratch,
) -> Evaluated {
    match export(sender, session, receiver.id, best, arena, scratch) {
        Ok(msg) => match import(receiver, session, sender.id, &msg, arena, scratch) {
            Ok(imported) => Evaluated::Accepted(imported),
            Err(Some(denied)) => Evaluated::Denied(denied),
            Err(None) => Evaluated::Silent,
        },
        Err(Some(denied)) => Evaluated::Denied(denied),
        Err(None) => Evaluated::Silent,
    }
}

/// Simulates one prefix to fixed point or cycle with the process-default
/// engine (see [`ConvergeEngine::from_env`]).
///
/// `originations[i]` lists why router `i` originates `prefix` (empty for
/// non-originators). `sessions` are the established sessions.
pub fn run_prefix(
    prefix: Prefix,
    routers: &[RouterCtx<'_>],
    sessions: &[Session],
    originations: &[Origination],
    arena: &mut DerivArena,
) -> PrefixOutcome {
    let mut work = ConvergeWork::default();
    let sessions_of = index_sessions(sessions, routers.len());
    match ConvergeEngine::from_env() {
        ConvergeEngine::Dense => run_prefix_dense(
            prefix,
            routers,
            sessions,
            &sessions_of,
            originations,
            arena,
            &mut work,
        ),
        ConvergeEngine::Sparse => {
            let mut memo = PolicyMemo::new();
            let mut scratch = SparseScratch::new();
            run_prefix_sparse(
                prefix,
                routers,
                sessions,
                &sessions_of,
                originations,
                arena,
                &mut memo,
                &mut scratch,
                &mut work,
            )
        }
    }
}

/// Interns the constant per-router local candidate routes.
fn intern_locals(
    prefix: Prefix,
    originations: &[Origination],
    arena: &mut DerivArena,
) -> Vec<Vec<Route>> {
    originations
        .iter()
        .map(|o| {
            o.sources
                .iter()
                .map(|(kind, lines)| {
                    let deriv = arena.intern(*kind, lines.clone(), vec![]);
                    Route::local(prefix, deriv)
                })
                .collect()
        })
        .collect()
}

/// Id-level twin of [`intern_locals`] for the interned sparse engine:
/// same arena intern calls in the same order, with the routes hash-consed
/// into `routes` instead of cloned per round.
fn intern_locals_ids(
    prefix: Prefix,
    originations: &[Origination],
    arena: &mut DerivArena,
    routes: &mut RouteInterner,
) -> Vec<Vec<RouteId>> {
    originations
        .iter()
        .map(|o| {
            o.sources
                .iter()
                .map(|(kind, lines)| {
                    let deriv = arena.intern(*kind, lines.clone(), vec![]);
                    routes.intern_owned(Route::local(prefix, deriv))
                })
                .collect()
        })
        .collect()
}

/// Session indices per member router, in session order — the candidate
/// evaluation order both engines share. Prefix-independent: callers
/// running many prefixes build this once and pass it to every engine
/// invocation (it showed up as per-prefix fixed cost when it was built
/// inside the engines).
pub fn index_sessions(sessions: &[Session], n: usize) -> Vec<Vec<u32>> {
    let mut sessions_of: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (si, s) in sessions.iter().enumerate() {
        sessions_of[s.a.index()].push(si as u32);
        sessions_of[s.b.index()].push(si as u32);
    }
    sessions_of
}

/// Reusable working memory for [`run_prefix_sparse`]: change logs, the
/// worklist bitmaps, cycle table, and candidate buffer. A many-prefix run
/// clears and refills these per prefix instead of reallocating — on the
/// repair loop's small networks the per-prefix allocations were a
/// measurable share of convergence wall time.
#[derive(Default)]
pub struct SparseScratch {
    slot_hash: Vec<u64>,
    logs: Vec<Vec<(usize, Option<RouteId>)>>,
    seen_states: FxHashMap<u64, usize>,
    dirty: Vec<bool>,
    next_dirty: Vec<bool>,
    pending: Vec<(usize, Option<RouteId>)>,
    candidates: Vec<RouteId>,
}

impl SparseScratch {
    pub fn new() -> Self {
        SparseScratch::default()
    }
}

/// The dense reference engine: every router recomputes from every session
/// every round. Kept verbatim as the oracle the sparse engine is tested
/// against (per-round scratch is reused, which does not change a single
/// evaluation).
pub fn run_prefix_dense(
    prefix: Prefix,
    routers: &[RouterCtx<'_>],
    sessions: &[Session],
    sessions_of: &[Vec<u32>],
    originations: &[Origination],
    arena: &mut DerivArena,
    work: &mut ConvergeWork,
) -> PrefixOutcome {
    let n = routers.len();
    work.prefixes += 1;
    // Local candidate routes never change across rounds.
    let locals = intern_locals(prefix, originations, arena);

    let mut best: Vec<Option<Route>> = (0..n)
        .map(|i| select_best(locals[i].iter().cloned()))
        .collect();
    let mut seen_states: FxHashMap<u64, usize> = FxHashMap::default();
    let mut history: Vec<Vec<Option<Route>>> = Vec::new();
    let mut rejections: Vec<DerivId> = Vec::new();

    // Per-round scratch, allocated once and drained per router / swapped
    // per round.
    let mut next: Vec<Option<Route>> = Vec::with_capacity(n);
    let mut candidates: Vec<Route> = Vec::new();
    let mut eval = EvalScratch::default();

    let max_rounds = MAX_ROUNDS_BASE + 4 * n;
    for round in 0..max_rounds {
        let state_hash = hash_state(&best);
        if let Some(&first) = seen_states.get(&state_hash) {
            // Revisited a state: rounds [first, round) form the cycle.
            let cycle_len = round - first;
            if cycle_len == 0 {
                break; // defensive; cannot happen (hash inserted below)
            }
            let mut observed: Vec<Vec<Route>> = vec![Vec::new(); n];
            for state in &history[first..] {
                for (i, r) in state.iter().enumerate() {
                    if let Some(r) = r {
                        if !observed[i].iter().any(|o: &Route| o.key() == r.key()) {
                            observed[i].push(r.clone());
                        }
                    }
                }
            }
            rejections.sort_unstable();
            rejections.dedup();
            return PrefixOutcome::Flapping {
                first_seen_round: first,
                cycle_len,
                observed,
                rejections,
            };
        }
        seen_states.insert(state_hash, round);
        history.push(best.clone());

        // Compute the next state.
        work.rounds += 1;
        work.recomputed_routers += n as u64;
        next.clear();
        for i in 0..n {
            let me = &routers[i];
            candidates.extend(locals[i].iter().cloned());
            for &si in &sessions_of[i] {
                let session = &sessions[si as usize];
                let view = session.view_of(me.id).expect("indexed by member");
                let neighbor = &routers[view.peer.index()];
                let Some(neighbor_best) = &best[view.peer.index()] else {
                    continue;
                };
                work.policy_evals += 1;
                match export(neighbor, session, me.id, neighbor_best, arena, &mut eval) {
                    Ok(msg) => match import(me, session, view.peer, &msg, arena, &mut eval) {
                        Ok(imported) => candidates.push(imported),
                        Err(Some(denied)) => rejections.push(denied),
                        Err(None) => {} // AS-path loop: not config-attributable
                    },
                    Err(Some(denied)) => rejections.push(denied),
                    Err(None) => {}
                }
            }
            next.push(select_best(candidates.drain(..)));
        }

        let stable = next.iter().zip(&best).all(|(a, b)| match (a, b) {
            (Some(x), Some(y)) => x.key() == y.key(),
            (None, None) => true,
            _ => false,
        });
        std::mem::swap(&mut best, &mut next);
        if stable {
            rejections.sort_unstable();
            rejections.dedup();
            return PrefixOutcome::Converged {
                rounds: round + 1,
                best,
                rejections,
            };
        }
    }
    // Defensive cap without a repeated state (should not happen for
    // deterministic synchronous dynamics over a finite state space, but we
    // never want an infinite loop in a repair inner loop).
    rejections.sort_unstable();
    rejections.dedup();
    PrefixOutcome::Flapping {
        first_seen_round: 0,
        cycle_len: max_rounds,
        observed: vec![
            best.into_iter()
                .flatten()
                .map(|r| vec![r])
                .next()
                .unwrap_or_default();
            n
        ],
        rejections,
    }
}

/// Position-indexed hash of one router's slot in the key-state vector.
/// The full state hash is the XOR of all slots, so a change to router `i`
/// updates it in O(1): `H ^= old_slot ^ new_slot`.
///
/// The key is identified by its hash-consed key id, so hashing a slot
/// never touches the AS path. Uses the crate's fast hasher, and need not
/// match the dense engine's [`hash_state`]: the sparse engine's hash only
/// has to be self-consistent (equal key states hash equal, which key-id
/// equality gives exactly), and every hit is *verified* against the true
/// key state before a cycle is declared — a collision between distinct
/// states costs a spurious comparison rather than a false cycle, the
/// same ~2^-64 regime as the dense engine, which trusts its SipHash
/// fingerprint outright.
fn hash_slot_id(routes: &RouteInterner, i: usize, r: Option<RouteId>) -> u64 {
    let mut hasher = crate::fxhash::FxHasher::default();
    i.hash(&mut hasher);
    match r {
        Some(id) => {
            1u8.hash(&mut hasher);
            routes.key_id(id).hash(&mut hasher);
        }
        None => 0u8.hash(&mut hasher),
    }
    hasher.finish()
}

/// Protocol-key equality of two id slots — an integer compare, since key
/// ids are hash-consed over [`crate::route::RouteKey`].
fn keys_eq_id(routes: &RouteInterner, a: Option<RouteId>, b: Option<RouteId>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => x == y || routes.key_id(x) == routes.key_id(y),
        (None, None) => true,
        _ => false,
    }
}

/// The value router `i`'s change log held at `round` (logs are seeded at
/// round 0 and gain an entry per change, sorted by round).
fn log_value_at(log: &[(usize, Option<RouteId>)], round: usize) -> Option<RouteId> {
    let idx = match log.binary_search_by_key(&round, |e| e.0) {
        Ok(k) => k,
        Err(k) => k - 1, // log[0].0 == 0 <= round, so k >= 1
    };
    log[idx].1
}

/// The sparse worklist engine. Produces outcomes byte-identical to
/// [`run_prefix_dense`] (modulo an astronomically unlikely 64-bit state
/// hash collision, where the dense engine would mis-detect a cycle and
/// this engine — which verifies hash hits against the reconstructed
/// state — would not):
///
/// * **Skipping is exact.** `next[i]` is a pure function of the
///   neighbors' round-*t* bests and constant locals. If no session
///   neighbor of `i` changed as a full `Route` in round *t*, recomputing
///   `i` would reproduce its current best bit-for-bit (same derivation
///   ids — the arena is content-addressed), so it is skipped. Dirtiness
///   propagates on *full* route change; the stability check stays
///   key-based, exactly like the dense engine.
/// * **Rejections are complete.** Every distinct transfer value the dense
///   engine ever evaluates is first evaluated here at the same (round,
///   receiver, session) position — the sender's change made the receiver
///   dirty — and its denial is recorded then. Dense re-evaluations of the
///   same value only push duplicates, which its final dedup removes.
/// * **Arena first-intern order is preserved.** New derivations only
///   appear on the first evaluation of a transfer value, and those first
///   evaluations coincide positionally in both engines; everything else
///   is a content-addressed dedup hit.
#[allow(clippy::too_many_arguments)]
pub fn run_prefix_sparse(
    prefix: Prefix,
    routers: &[RouterCtx<'_>],
    sessions: &[Session],
    sessions_of: &[Vec<u32>],
    originations: &[Origination],
    arena: &mut DerivArena,
    memo: &mut PolicyMemo,
    scratch: &mut SparseScratch,
    work: &mut ConvergeWork,
) -> PrefixOutcome {
    let n = routers.len();
    work.prefixes += 1;
    let locals = intern_locals_ids(prefix, originations, arena, &mut memo.routes);

    let mut best: Vec<Option<RouteId>> = (0..n)
        .map(|i| select_best_id(&memo.routes, locals[i].iter().copied()))
        .collect();
    // Incremental state hash and per-router change logs (round, value) —
    // the compact replacement for the dense engine's per-round history.
    // All working buffers live in `scratch` and are reset here.
    let slot_hash = &mut scratch.slot_hash;
    slot_hash.clear();
    slot_hash.extend(
        best.iter()
            .enumerate()
            .map(|(i, r)| hash_slot_id(&memo.routes, i, *r)),
    );
    let mut state_hash: u64 = slot_hash.iter().fold(0, |acc, h| acc ^ h);
    let logs = &mut scratch.logs;
    logs.truncate(n);
    logs.resize_with(n, Vec::new);
    for (log, r) in logs.iter_mut().zip(&best) {
        log.clear();
        log.push((0usize, *r));
    }
    let seen_states = &mut scratch.seen_states;
    seen_states.clear();
    let mut rejections: Vec<DerivId> = Vec::new();

    // Worklist state: `dirty` for the round being computed, `next_dirty`
    // accumulates for the round after. Round 1 recomputes everyone.
    scratch.dirty.clear();
    scratch.dirty.resize(n, true);
    scratch.next_dirty.clear();
    scratch.next_dirty.resize(n, false);
    let mut dirty = &mut scratch.dirty;
    let mut next_dirty = &mut scratch.next_dirty;
    let pending = &mut scratch.pending;
    pending.clear();
    let candidates = &mut scratch.candidates;
    candidates.clear();

    let max_rounds = MAX_ROUNDS_BASE + 4 * n;
    for round in 0..max_rounds {
        if let Some(&first) = seen_states.get(&state_hash) {
            // Hash hit: verify true key-state equality against the
            // reconstructed round-`first` state before declaring a cycle
            // (a collision between distinct states is skipped — the dense
            // engine would mis-fire here, at probability ~2^-64).
            let equal = logs
                .iter()
                .zip(&best)
                .all(|(log, cur)| keys_eq_id(&memo.routes, log_value_at(log, first), *cur));
            if equal {
                let cycle_len = round - first;
                if cycle_len == 0 {
                    break; // defensive; cannot happen (hash inserted below)
                }
                // Reconstruct the dense `observed` sets: per router, the
                // first occurrence of each distinct key over the cycle
                // rounds [first, round), in round order.
                let mut observed: Vec<Vec<Route>> = vec![Vec::new(); n];
                let mut observed_ids: Vec<Vec<RouteId>> = vec![Vec::new(); n];
                for (i, log) in logs.iter().enumerate() {
                    for r in first..round {
                        if let Some(id) = log_value_at(log, r) {
                            let kid = memo.routes.key_id(id);
                            if !observed_ids[i]
                                .iter()
                                .any(|o| memo.routes.key_id(*o) == kid)
                            {
                                observed_ids[i].push(id);
                                observed[i].push(memo.routes.get(id).clone());
                            }
                        }
                    }
                }
                rejections.sort_unstable();
                rejections.dedup();
                return PrefixOutcome::Flapping {
                    first_seen_round: first,
                    cycle_len,
                    observed,
                    rejections,
                };
            }
        } else {
            seen_states.insert(state_hash, round);
        }

        // Sweep the dirty routers against the round-`round` state.
        // Updates are buffered in `pending` so every recomputation reads
        // the same synchronous state.
        work.rounds += 1;
        pending.clear();
        for i in 0..n {
            if !dirty[i] {
                work.skipped_routers += 1;
                continue;
            }
            work.recomputed_routers += 1;
            let me = &routers[i];
            candidates.extend(locals[i].iter().copied());
            for &si in &sessions_of[i] {
                let session = &sessions[si as usize];
                let view = session.view_of(me.id).expect("indexed by member");
                let Some(neighbor_best) = best[view.peer.index()] else {
                    continue;
                };
                let neighbor = &routers[view.peer.index()];
                let (fresh, t) =
                    memo.transfer(si, me, neighbor, session, neighbor_best, arena, work);
                match t {
                    Transfer::Accepted(id) => candidates.push(id),
                    Transfer::Denied(d) => {
                        if fresh {
                            rejections.push(d);
                        }
                    }
                    Transfer::Silent => {}
                }
            }
            // Full-route identity is id identity, so the dirtiness check
            // (and the candidate comparisons inside `select_best_id`'s
            // comparator) never deep-compare routes.
            let new = select_best_id(&memo.routes, candidates.drain(..));
            if new != best[i] {
                pending.push((i, new));
            }
        }

        // Key-stability, dense semantics: changes that only touch
        // non-key fields (derivation, communities) still converge.
        let stable = pending
            .iter()
            .all(|(i, new)| keys_eq_id(&memo.routes, *new, best[*i]));
        for (i, new) in pending.drain(..) {
            let h = hash_slot_id(&memo.routes, i, new);
            state_hash ^= slot_hash[i] ^ h;
            slot_hash[i] = h;
            best[i] = new;
            logs[i].push((round + 1, new));
            for &si in &sessions_of[i] {
                let s = &sessions[si as usize];
                let peer = if s.a.index() == i { s.b } else { s.a };
                next_dirty[peer.index()] = true;
            }
        }
        if stable {
            rejections.sort_unstable();
            rejections.dedup();
            return PrefixOutcome::Converged {
                rounds: round + 1,
                best: best
                    .into_iter()
                    .map(|o| o.map(|id| memo.routes.get(id).clone()))
                    .collect(),
                rejections,
            };
        }
        std::mem::swap(&mut dirty, &mut next_dirty);
        next_dirty.fill(false);
    }
    // Defensive cap, identical to the dense engine's.
    rejections.sort_unstable();
    rejections.dedup();
    PrefixOutcome::Flapping {
        first_seen_round: 0,
        cycle_len: max_rounds,
        observed: vec![
            best.into_iter()
                .flatten()
                .map(|id| vec![memo.routes.get(id).clone()])
                .next()
                .unwrap_or_default();
            n
        ],
        rejections,
    }
}

/// Probes a previously converged outcome with one synchronous round: if
/// the cached per-router bests are a full fixed point of the *current*
/// dynamics (every recomputation reproduces the cached route
/// bit-for-bit), the cached outcome — rounds, bests, rejections — is
/// returned for wholesale reuse; otherwise `None`, and the caller falls
/// back to a cold run, so provenance is never silently altered.
///
/// The caller is responsible for only probing when the dynamics are
/// *expected* to be unchanged (the incremental verifier's
/// `warm_eligible` guard); the probe is the runtime defense-in-depth
/// behind that guard. Under the guard every intern below is a
/// content-addressed dedup hit; a failed probe may leave unreferenced
/// (and therefore harmless) derivations behind. Probe evaluations go
/// through [`PolicyMemo::probe_transfer`], which never stamps the current
/// run generation: probes do not record rejections, so an entry the probe
/// touches must still read as unattempted to a subsequent cold run.
#[allow(clippy::too_many_arguments)]
pub fn warm_probe(
    prefix: Prefix,
    routers: &[RouterCtx<'_>],
    sessions: &[Session],
    sessions_of: &[Vec<u32>],
    originations: &[Origination],
    arena: &mut DerivArena,
    memo: &mut PolicyMemo,
    base: &PrefixOutcome,
    work: &mut ConvergeWork,
) -> Option<PrefixOutcome> {
    let PrefixOutcome::Converged { best, .. } = base else {
        return None;
    };
    let n = routers.len();
    if best.len() != n {
        return None;
    }
    work.warm_probes += 1;
    // Intern the cached bests so every per-router comparison below is an
    // id compare (id equality ⟺ full-route equality within the interner).
    let best_ids: Vec<Option<RouteId>> = best
        .iter()
        .map(|r| r.as_ref().map(|r| memo.routes.intern(r)))
        .collect();
    let mut candidates: Vec<RouteId> = Vec::new();
    for i in 0..n {
        let me = &routers[i];
        for (kind, lines) in &originations[i].sources {
            let deriv = arena.intern(*kind, lines.clone(), vec![]);
            candidates.push(memo.routes.intern_owned(Route::local(prefix, deriv)));
        }
        for &si in &sessions_of[i] {
            let session = &sessions[si as usize];
            let view = session.view_of(me.id).expect("indexed by member");
            let Some(neighbor_best) = best_ids[view.peer.index()] else {
                continue;
            };
            let neighbor = &routers[view.peer.index()];
            let t = memo.probe_transfer(si, me, neighbor, session, neighbor_best, arena, work);
            if let Transfer::Accepted(id) = t {
                candidates.push(id);
            }
        }
        if select_best_id(&memo.routes, candidates.drain(..)) != best_ids[i] {
            return None;
        }
    }
    work.warm_reused += 1;
    Some(base.clone())
}

/// The export half: `sender` announces its best to `receiver` over
/// `session`. Returns `None` when suppressed (policy deny).
///
/// Deliberately **no split horizon**: eBGP advertises the best route to
/// every session peer, including the one it was learned from; the
/// *receiver's* AS-path loop check is what normally discards the echo.
/// `as-path overwrite` erases that evidence — the exact mechanism of the
/// paper's Figure 2 incident — so modelling the echo is essential.
/// `Err(Some(deriv))` = export policy denied (negative provenance);
/// `Err(None)` = no BGP process on the sender.
fn export(
    sender: &RouterCtx<'_>,
    session: &Session,
    receiver: RouterId,
    best: &Route,
    arena: &mut DerivArena,
    scratch: &mut EvalScratch,
) -> Result<Route, Option<DerivId>> {
    let sender_view = session.view_of(sender.id).ok_or(None)?;
    debug_assert_eq!(sender_view.peer, receiver);
    let own_asn = sender.asn.ok_or(None)?;

    let EvalScratch { lines, parents } = scratch;
    lines.clear();
    lines.extend_from_slice(sender_view.base_lines);
    parents.clear();
    parents.push(best.deriv);
    let mut out = best.clone();
    let mut overwrote = false;
    if let Some((policy, app_line)) = sender_view.export {
        lines.push(app_line);
        match eval_policy_into(sender.model, sender.id, own_asn, policy, best, lines) {
            PolicyOutcome::Permit {
                route,
                overwrote_path,
            } => {
                out = route;
                overwrote = overwrote_path;
            }
            PolicyOutcome::Deny => {
                return Err(Some(arena.intern_ref(
                    DerivKind::ExportDenied,
                    lines,
                    parents,
                )));
            }
        }
    }
    if !overwrote {
        out.as_path = out.as_path.prepend(own_asn);
    }
    // eBGP next-hop-self: the announcement carries the sender's address on
    // the shared link.
    out.next_hop = sender_view.local_addr;
    // Announcements reset LOCAL_PREF (it is not transitive across eBGP)
    // and keep MED/communities.
    out.local_pref = crate::route::DEFAULT_LOCAL_PREF;
    out.deriv = arena.intern_ref(DerivKind::Export, lines, parents);
    out.learned_from = None; // receiver will stamp its own view
    Ok(out)
}

/// The import half: `receiver` accepts `msg` from `sender`.
/// `Err(Some(deriv))` = import policy denied (negative provenance);
/// `Err(None)` = AS-path loop rejection (not config-attributable).
fn import(
    receiver: &RouterCtx<'_>,
    session: &Session,
    sender: RouterId,
    msg: &Route,
    arena: &mut DerivArena,
    scratch: &mut EvalScratch,
) -> Result<Route, Option<DerivId>> {
    let view = session.view_of(receiver.id).ok_or(None)?;
    debug_assert_eq!(view.peer, sender);
    let own_asn = receiver.asn.ok_or(None)?;
    // AS-path loop prevention on the path *as received*. Note that an
    // overwritten path has had the evidence erased — which is precisely
    // how the Figure 2 incident defeats this check.
    if msg.as_path.contains(own_asn) {
        return Err(None);
    }
    let EvalScratch { lines, parents } = scratch;
    lines.clear();
    lines.extend_from_slice(view.base_lines);
    parents.clear();
    parents.push(msg.deriv);
    let mut out = msg.clone();
    if let Some((policy, app_line)) = view.import {
        lines.push(app_line);
        match eval_policy_into(receiver.model, receiver.id, own_asn, policy, msg, lines) {
            PolicyOutcome::Permit { route, .. } => {
                out = route;
            }
            PolicyOutcome::Deny => {
                return Err(Some(arena.intern_ref(
                    DerivKind::ImportDenied,
                    lines,
                    parents,
                )));
            }
        }
    }
    out.learned_from = Some(sender);
    out.deriv = arena.intern_ref(DerivKind::Import, lines, parents);
    Ok(out)
}

fn hash_state(best: &[Option<Route>]) -> u64 {
    let mut hasher = DefaultHasher::new();
    for r in best {
        match r {
            Some(r) => {
                1u8.hash(&mut hasher);
                r.key().hash(&mut hasher);
            }
            None => 0u8.hash(&mut hasher),
        }
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::establish;
    use acr_cfg::model::DeviceModel;
    use acr_cfg::parse::parse_device;
    use acr_topo::{gen, Role, Topology, TopologyBuilder};

    fn models_of(topo: &Topology, cfgs: &[&str]) -> Vec<DeviceModel> {
        topo.routers()
            .iter()
            .zip(cfgs)
            .map(|(r, c)| DeviceModel::from_config(&parse_device(r.name.clone(), c).unwrap()))
            .collect()
    }

    fn ctxs<'a>(topo: &Topology, models: &'a [DeviceModel]) -> Vec<RouterCtx<'a>> {
        topo.routers()
            .iter()
            .map(|r| RouterCtx {
                id: r.id,
                model: &models[r.id.index()],
                asn: models[r.id.index()].asn.map(|(a, _)| a),
            })
            .collect()
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Three routers in a line: R0 — R1 — R2, R0 originates.
    fn line3() -> (Topology, Vec<DeviceModel>) {
        let topo = gen::line(3);
        // Link 0: R0(172.16.0.1) - R1(172.16.0.2)
        // Link 1: R1(172.16.0.5) - R2(172.16.0.6)
        let cfgs = [
            "bgp 65000\n network 10.0.0.0 16\n peer 172.16.0.2 as-number 65001\n",
            "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.6 as-number 65002\n",
            "bgp 65002\n peer 172.16.0.5 as-number 65001\n",
        ];
        let models = models_of(&topo, &cfgs);
        (topo, models)
    }

    #[test]
    fn propagation_along_line() {
        let (topo, models) = line3();
        let (sessions, diags) = establish(&topo, &models);
        assert_eq!(sessions.len(), 2, "{diags:?}");
        let routers = ctxs(&topo, &models);
        let mut arena = DerivArena::new();
        let mut orig = vec![Origination::default(); 3];
        orig[0]
            .sources
            .push((DerivKind::OriginNetwork, vec![LineId::new(RouterId(0), 2)]));
        let out = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        let PrefixOutcome::Converged { best, .. } = &out else {
            panic!("should converge");
        };
        // R0: local; R1: path [65000]; R2: path [65001 65000].
        assert!(best[0].as_ref().unwrap().as_path.is_empty());
        assert_eq!(best[1].as_ref().unwrap().as_path.hops(), &[Asn(65000)]);
        assert_eq!(
            best[2].as_ref().unwrap().as_path.hops(),
            &[Asn(65001), Asn(65000)]
        );
        assert_eq!(best[1].as_ref().unwrap().learned_from, Some(RouterId(0)));
        // Next hops point along the line.
        assert_eq!(best[1].as_ref().unwrap().next_hop.to_string(), "172.16.0.1");
        assert_eq!(best[2].as_ref().unwrap().next_hop.to_string(), "172.16.0.5");
        // Provenance closure of R2's best includes R0's network line.
        let lines = arena.closure_lines([best[2].as_ref().unwrap().deriv]);
        assert!(lines.contains(&LineId::new(RouterId(0), 2)), "{lines:?}");
    }

    #[test]
    fn no_origination_means_no_routes() {
        let (topo, models) = line3();
        let (sessions, _) = establish(&topo, &models);
        let routers = ctxs(&topo, &models);
        let mut arena = DerivArena::new();
        let orig = vec![Origination::default(); 3];
        let out = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        let PrefixOutcome::Converged { best, rounds, .. } = out else {
            panic!()
        };
        assert!(best.iter().all(|b| b.is_none()));
        assert_eq!(rounds, 1);
    }

    #[test]
    fn as_loop_prevention_blocks_reimport() {
        // Ring of 3 in distinct ASes: origination propagates both ways and
        // stops; everything converges with shortest paths.
        let topo = gen::ring(3);
        // links: 0: R0-R1 (172.16.0.1/.2), 1: R1-R2 (.5/.6), 2: R2-R0 (.9/.10)
        let cfgs = [
            "bgp 65000\n network 10.0.0.0 16\n peer 172.16.0.2 as-number 65001\n peer 172.16.0.9 as-number 65002\n",
            "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.6 as-number 65002\n",
            "bgp 65002\n peer 172.16.0.5 as-number 65001\n peer 172.16.0.10 as-number 65000\n",
        ];
        let models = models_of(&topo, &cfgs);
        let (sessions, diags) = establish(&topo, &models);
        assert_eq!(sessions.len(), 3, "{diags:?}");
        let routers = ctxs(&topo, &models);
        let mut arena = DerivArena::new();
        let mut orig = vec![Origination::default(); 3];
        orig[0]
            .sources
            .push((DerivKind::OriginNetwork, vec![LineId::new(RouterId(0), 2)]));
        let out = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        let PrefixOutcome::Converged { best, .. } = out else {
            panic!("must converge")
        };
        // R1 and R2 each pick the direct one-hop path to R0.
        assert_eq!(best[1].as_ref().unwrap().as_path.len(), 1);
        assert_eq!(best[2].as_ref().unwrap().as_path.len(), 1);
    }

    #[test]
    fn import_deny_policy_filters() {
        let (topo, mut models) = line3();
        // R1 denies everything on import from R0.
        models[1] = DeviceModel::from_config(
            &parse_device(
                "R1",
                "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.1 route-policy Block import\n peer 172.16.0.6 as-number 65002\nroute-policy Block deny node 10\n",
            )
            .unwrap(),
        );
        let (sessions, _) = establish(&topo, &models);
        let routers = ctxs(&topo, &models);
        let mut arena = DerivArena::new();
        let mut orig = vec![Origination::default(); 3];
        orig[0]
            .sources
            .push((DerivKind::OriginNetwork, vec![LineId::new(RouterId(0), 2)]));
        let out = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        let PrefixOutcome::Converged { best, .. } = out else {
            panic!()
        };
        assert!(best[0].is_some());
        assert!(best[1].is_none(), "import deny must filter");
        assert!(best[2].is_none(), "nothing to propagate onward");
    }

    #[test]
    fn export_policy_prepend_lengthens_path() {
        let (topo, mut models) = line3();
        models[0] = DeviceModel::from_config(
            &parse_device(
                "R0",
                "bgp 65000\n network 10.0.0.0 16\n peer 172.16.0.2 as-number 65001\n peer 172.16.0.2 route-policy Pad export\nroute-policy Pad permit node 10\n apply as-path prepend 65000 2\n",
            )
            .unwrap(),
        );
        let (sessions, _) = establish(&topo, &models);
        let routers = ctxs(&topo, &models);
        let mut arena = DerivArena::new();
        let mut orig = vec![Origination::default(); 3];
        orig[0]
            .sources
            .push((DerivKind::OriginNetwork, vec![LineId::new(RouterId(0), 2)]));
        let out = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        let PrefixOutcome::Converged { best, .. } = out else {
            panic!()
        };
        // Prepend 2 + the normal export prepend = 3 hops at R1.
        assert_eq!(best[1].as_ref().unwrap().as_path.len(), 3);
    }

    #[test]
    fn overwrite_on_import_erases_path() {
        let (topo, mut models) = line3();
        models[1] = DeviceModel::from_config(
            &parse_device(
                "R1",
                "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.1 route-policy OW import\n peer 172.16.0.6 as-number 65002\nroute-policy OW permit node 10\n apply as-path overwrite\n",
            )
            .unwrap(),
        );
        let (sessions, _) = establish(&topo, &models);
        let routers = ctxs(&topo, &models);
        let mut arena = DerivArena::new();
        let mut orig = vec![Origination::default(); 3];
        orig[0]
            .sources
            .push((DerivKind::OriginNetwork, vec![LineId::new(RouterId(0), 2)]));
        let out = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        let PrefixOutcome::Converged { best, .. } = out else {
            panic!()
        };
        assert_eq!(best[1].as_ref().unwrap().as_path.hops(), &[Asn(65001)]);
        // R2 sees [65001 65001] (R1's overwritten path + export prepend).
        assert_eq!(
            best[2].as_ref().unwrap().as_path.hops(),
            &[Asn(65001), Asn(65001)]
        );
    }
    /// The classic BAD GADGET: three spokes around an origin hub, each
    /// preferring (via local-pref) the route heard from its clockwise
    /// neighbor over its own direct route. No stable assignment exists;
    /// the synchronous dynamics cycle with period 3 — the simulator must
    /// detect the oscillation (the paper's route flapping).
    fn bad_gadget() -> (Topology, Vec<DeviceModel>) {
        let mut b = TopologyBuilder::new();
        let o = b.router("O", Role::Backbone);
        let x = b.router("X", Role::Backbone);
        let y = b.router("Y", Role::Backbone);
        let z = b.router("Z", Role::Backbone);
        b.link(o, x); // .1/.2
        b.link(o, y); // .5/.6
        b.link(o, z); // .9/.10
        b.link(x, y); // .13/.14
        b.link(y, z); // .17/.18
        b.link(z, x); // .21/.22
        let topo = b.build();
        let cfgs = [
            // O originates and peers with all spokes.
            "bgp 65000\n network 10.0.0.0 16\n peer 172.16.0.2 as-number 65001\n peer 172.16.0.6 as-number 65002\n peer 172.16.0.10 as-number 65003\n".to_string(),
            // X prefers routes from Y.
            "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.14 as-number 65002\n peer 172.16.0.14 route-policy Prefer import\n peer 172.16.0.21 as-number 65003\nroute-policy Prefer permit node 10\n apply local-preference 200\n".to_string(),
            // Y prefers routes from Z.
            "bgp 65002\n peer 172.16.0.5 as-number 65000\n peer 172.16.0.13 as-number 65001\n peer 172.16.0.18 as-number 65003\n peer 172.16.0.18 route-policy Prefer import\nroute-policy Prefer permit node 10\n apply local-preference 200\n".to_string(),
            // Z prefers routes from X.
            "bgp 65003\n peer 172.16.0.9 as-number 65000\n peer 172.16.0.17 as-number 65002\n peer 172.16.0.22 as-number 65001\n peer 172.16.0.22 route-policy Prefer import\nroute-policy Prefer permit node 10\n apply local-preference 200\n".to_string(),
        ];
        let models: Vec<DeviceModel> = topo
            .routers()
            .iter()
            .map(|r| {
                DeviceModel::from_config(
                    &parse_device(r.name.clone(), &cfgs[r.id.index()]).unwrap(),
                )
            })
            .collect();
        (topo, models)
    }

    #[test]
    fn bad_gadget_flaps() {
        let (topo, models) = bad_gadget();
        let (sessions, diags) = establish(&topo, &models);
        assert_eq!(sessions.len(), 6, "{diags:?}");
        let routers = ctxs(&topo, &models);
        let mut arena = DerivArena::new();
        let mut orig = vec![Origination::default(); 4];
        orig[0]
            .sources
            .push((DerivKind::OriginNetwork, vec![LineId::new(RouterId(0), 2)]));
        let out = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        match out {
            PrefixOutcome::Flapping {
                cycle_len,
                ref observed,
                ..
            } => {
                assert!(
                    cycle_len >= 2,
                    "period must be non-trivial, got {cycle_len}"
                );
                // Every spoke observes at least two distinct bests.
                for (spoke, seen) in observed.iter().enumerate().take(4).skip(1) {
                    assert!(seen.len() > 1, "spoke {spoke}: {seen:?}");
                }
                // Coverage of the flap reaches the local-pref policy lines.
                let roots = out.deriv_roots();
                let lines = arena.closure_lines(roots);
                assert!(
                    lines.contains(&LineId::new(RouterId(1), 7)),
                    "flap coverage must reach X\'s apply local-preference line: {lines:?}"
                );
            }
            PrefixOutcome::Converged { best, .. } => {
                panic!("expected flapping, converged to {best:?}")
            }
        }
    }

    /// Mutual `as-path overwrite` between two transit routers produces a
    /// *stable* forwarding loop (not a flap): each keeps the other\'s
    /// echoed route because the overwrite erased the loop evidence. This
    /// is the post-partial-repair state of the paper\'s Figure 2.
    #[test]
    fn mutual_overwrite_converges_to_stable_loop() {
        let (topo, models) = mutual_overwrite();
        let (sessions, _) = establish(&topo, &models);
        let routers = ctxs(&topo, &models);
        let mut arena = DerivArena::new();
        let mut orig = vec![Origination::default(); 3];
        orig[0]
            .sources
            .push((DerivKind::OriginNetwork, vec![LineId::new(RouterId(0), 2)]));
        let out = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        let PrefixOutcome::Converged { best, .. } = out else {
            panic!("mutual overwrite should converge to a stable (looping) state")
        };
        // X\'s best points at Y, and Y\'s best points at X: a stable
        // control plane whose data plane loops.
        assert_eq!(
            best[1].as_ref().unwrap().learned_from,
            Some(RouterId(2)),
            "{best:?}"
        );
        assert_eq!(
            best[2].as_ref().unwrap().learned_from,
            Some(RouterId(1)),
            "{best:?}"
        );
    }

    fn mutual_overwrite() -> (Topology, Vec<DeviceModel>) {
        let mut b = TopologyBuilder::new();
        let r0 = b.router("O", Role::Backbone);
        let r1 = b.router("X", Role::Backbone);
        let r2 = b.router("Y", Role::Backbone);
        b.link(r0, r1); // .1/.2
        b.link(r1, r2); // .5/.6
        let topo = b.build();
        // O originates; X transits honestly; Y overwrites+prefers routes
        // from X. X in turn overwrites+prefers routes from Y.
        let cfgs = [
            "bgp 65000\n network 10.0.0.0 16\n peer 172.16.0.2 as-number 65001\n".to_string(),
            "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.6 as-number 65002\n peer 172.16.0.6 route-policy OW import\nroute-policy OW permit node 10\n apply as-path overwrite\n apply local-preference 200\n".to_string(),
            "bgp 65002\n peer 172.16.0.5 as-number 65001\n peer 172.16.0.5 route-policy OW import\nroute-policy OW permit node 10\n apply as-path overwrite\n apply local-preference 200\n".to_string(),
        ];
        let models: Vec<DeviceModel> = topo
            .routers()
            .iter()
            .map(|r| {
                DeviceModel::from_config(
                    &parse_device(r.name.clone(), &cfgs[r.id.index()]).unwrap(),
                )
            })
            .collect();
        (topo, models)
    }

    #[test]
    fn deriv_arena_stays_bounded_under_flap() {
        let (topo, models) = bad_gadget();
        let (sessions, _) = establish(&topo, &models);
        let routers = ctxs(&topo, &models);
        let mut arena = DerivArena::new();
        let mut orig = vec![Origination::default(); 4];
        orig[0]
            .sources
            .push((DerivKind::OriginNetwork, vec![LineId::new(RouterId(0), 2)]));
        let _ = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        assert!(arena.len() < 128, "arena grew to {}", arena.len());
    }

    /// Runs both engines on the same dynamics and asserts byte-identical
    /// outcomes *and* arenas, returning the work counters for invariant
    /// checks.
    fn both_engines(
        topo: &Topology,
        models: &[DeviceModel],
        orig: &[Origination],
        prefix: Prefix,
    ) -> (PrefixOutcome, ConvergeWork, ConvergeWork) {
        let (sessions, _) = establish(topo, models);
        let routers = ctxs(topo, models);
        let sessions_of = index_sessions(&sessions, routers.len());
        let mut dense_arena = DerivArena::new();
        let mut dense_work = ConvergeWork::default();
        let dense = run_prefix_dense(
            prefix,
            &routers,
            &sessions,
            &sessions_of,
            orig,
            &mut dense_arena,
            &mut dense_work,
        );
        let mut sparse_arena = DerivArena::new();
        let mut sparse_work = ConvergeWork::default();
        let mut memo = PolicyMemo::new();
        let mut scratch = SparseScratch::new();
        let sparse = run_prefix_sparse(
            prefix,
            &routers,
            &sessions,
            &sessions_of,
            orig,
            &mut sparse_arena,
            &mut memo,
            &mut scratch,
            &mut sparse_work,
        );
        assert_eq!(dense, sparse, "outcomes must be byte-identical");
        assert_eq!(dense_arena, sparse_arena, "arenas must be byte-identical");
        (dense, dense_work, sparse_work)
    }

    fn origin_at_r0(n: usize) -> Vec<Origination> {
        let mut orig = vec![Origination::default(); n];
        orig[0]
            .sources
            .push((DerivKind::OriginNetwork, vec![LineId::new(RouterId(0), 2)]));
        orig
    }

    #[test]
    fn sparse_matches_dense_on_line() {
        let (topo, models) = line3();
        let (out, dense, sparse) = both_engines(&topo, &models, &origin_at_r0(3), p("10.0.0.0/16"));
        assert!(out.is_converged());
        assert!(
            sparse.recomputed_routers < dense.recomputed_routers,
            "sparse {sparse:?} vs dense {dense:?}"
        );
        assert!(sparse.policy_evals < dense.policy_evals);
        assert_eq!(sparse.rounds, dense.rounds);
    }

    #[test]
    fn sparse_matches_dense_on_flap() {
        // Cycle detection must fire at the same first_seen_round and
        // cycle_len, with identical observed sets.
        let (topo, models) = bad_gadget();
        let (out, dense, sparse) = both_engines(&topo, &models, &origin_at_r0(4), p("10.0.0.0/16"));
        assert!(matches!(out, PrefixOutcome::Flapping { .. }));
        assert!(sparse.policy_evals < dense.policy_evals);
        assert!(
            sparse.memo_hits > 0,
            "a flap cycles through memoized transfers"
        );
    }

    #[test]
    fn sparse_matches_dense_on_stable_loop() {
        let (topo, models) = mutual_overwrite();
        let (out, _, _) = both_engines(&topo, &models, &origin_at_r0(3), p("10.0.0.0/16"));
        assert!(out.is_converged());
    }

    #[test]
    fn sparse_matches_dense_without_origination() {
        let (topo, models) = line3();
        let orig = vec![Origination::default(); 3];
        let (out, dense, sparse) = both_engines(&topo, &models, &orig, p("10.0.0.0/16"));
        let PrefixOutcome::Converged { rounds, .. } = out else {
            panic!()
        };
        // Single-round prefixes do equal work in both engines.
        assert_eq!(rounds, 1);
        assert_eq!(sparse.recomputed_routers, dense.recomputed_routers);
    }

    #[test]
    fn warm_probe_reuses_a_fixed_point_and_rejects_a_changed_one() {
        let (topo, models) = line3();
        let (sessions, _) = establish(&topo, &models);
        let routers = ctxs(&topo, &models);
        let orig = origin_at_r0(3);
        let sessions_of = index_sessions(&sessions, routers.len());
        let mut arena = DerivArena::new();
        let base = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        let mut work = ConvergeWork::default();
        let mut memo = PolicyMemo::new();
        let probed = warm_probe(
            p("10.0.0.0/16"),
            &routers,
            &sessions,
            &sessions_of,
            &orig,
            &mut arena,
            &mut memo,
            &base,
            &mut work,
        )
        .expect("unchanged dynamics must re-confirm the fixed point");
        assert_eq!(probed, base);
        assert_eq!(work.warm_reused, 1);

        // Change R1's import policy to deny: the cached state is no longer
        // a fixed point — the probe must refuse it.
        let mut changed = models.clone();
        changed[1] = DeviceModel::from_config(
            &parse_device(
                "R1",
                "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.1 route-policy Block import\n peer 172.16.0.6 as-number 65002\nroute-policy Block deny node 10\n",
            )
            .unwrap(),
        );
        let (sessions2, _) = establish(&topo, &changed);
        let routers2 = ctxs(&topo, &changed);
        let sessions_of2 = index_sessions(&sessions2, routers2.len());
        let mut work2 = ConvergeWork::default();
        let mut memo2 = PolicyMemo::new();
        assert!(warm_probe(
            p("10.0.0.0/16"),
            &routers2,
            &sessions2,
            &sessions_of2,
            &orig,
            &mut arena,
            &mut memo2,
            &base,
            &mut work2,
        )
        .is_none());
        assert_eq!(work2.warm_fallbacks, 0, "fallback is counted by the caller");
        assert_eq!(work2.warm_reused, 0);
    }

    #[test]
    fn flapping_outcome_is_never_warm_probed() {
        let (topo, models) = bad_gadget();
        let (sessions, _) = establish(&topo, &models);
        let routers = ctxs(&topo, &models);
        let orig = origin_at_r0(4);
        let sessions_of = index_sessions(&sessions, routers.len());
        let mut arena = DerivArena::new();
        let base = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        let mut work = ConvergeWork::default();
        let mut memo = PolicyMemo::new();
        assert!(warm_probe(
            p("10.0.0.0/16"),
            &routers,
            &sessions,
            &sessions_of,
            &orig,
            &mut arena,
            &mut memo,
            &base,
            &mut work,
        )
        .is_none());
        assert_eq!(work.warm_probes, 0);
    }
}
