//! The per-prefix BGP propagation engine.
//!
//! The dynamics are the classic synchronous path-vector iteration: in
//! round *t+1* every router recomputes its best route from its local
//! originations plus what every session neighbor *exported in round t*.
//! Because exports are a pure function of the neighbors' round-*t* bests,
//! the vector of per-router bests is a complete state: the run either
//! reaches a fixed point (**converged**) or revisits a state
//! (**oscillating** — the paper's route flapping, Figure 2a).
//!
//! On oscillation the engine reports the cycle and every route observed
//! inside it, so coverage can attribute the flap to the configuration
//! lines that keep rewriting the route (the override policies of the
//! incident).

use crate::deriv::{DerivArena, DerivId, DerivKind};
use crate::policy::{eval_policy, PolicyVerdict};
use crate::route::{select_best, Route};
use crate::session::Session;
use acr_cfg::model::DeviceModel;
use acr_cfg::LineId;
use acr_net_types::{Asn, Prefix, RouterId};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Base number of extra rounds beyond the network diameter bound before
/// declaring non-convergence without a detected cycle (defensive cap; the
/// cycle detector normally fires first).
pub const MAX_ROUNDS_BASE: usize = 64;

/// Result of simulating one prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixOutcome {
    /// Fixed point reached after `rounds` rounds; per-router best route
    /// (indexed by `RouterId::index()`).
    Converged {
        rounds: usize,
        best: Vec<Option<Route>>,
        /// Negative provenance: derivations of announcements a policy
        /// rejected during the run (see [`DerivKind::ImportDenied`]).
        rejections: Vec<DerivId>,
    },
    /// A state repeated: the prefix flaps. `cycle_len` is the period;
    /// `observed` collects every distinct best route each router held
    /// inside the cycle (provenance roots for the failure).
    Flapping {
        first_seen_round: usize,
        cycle_len: usize,
        observed: Vec<Vec<Route>>,
        /// Negative provenance, as in [`PrefixOutcome::Converged`].
        rejections: Vec<DerivId>,
    },
}

impl PrefixOutcome {
    /// Whether the prefix converged.
    pub fn is_converged(&self) -> bool {
        matches!(self, PrefixOutcome::Converged { .. })
    }

    /// The stable best route of `router`, if converged.
    pub fn best_of(&self, router: RouterId) -> Option<&Route> {
        match self {
            PrefixOutcome::Converged { best, .. } => best.get(router.index())?.as_ref(),
            PrefixOutcome::Flapping { .. } => None,
        }
    }

    /// Derivation roots of everything this outcome depends on — bests for
    /// a converged prefix, every observed route for a flapping one.
    pub fn deriv_roots(&self) -> Vec<DerivId> {
        match self {
            PrefixOutcome::Converged { best, .. } => {
                best.iter().flatten().map(|r| r.deriv).collect()
            }
            PrefixOutcome::Flapping { observed, .. } => {
                observed.iter().flatten().map(|r| r.deriv).collect()
            }
        }
    }

    /// Negative-provenance roots: announcements a policy rejected. Failed
    /// tests fold these into their coverage so SBFL can see deny-type
    /// faults (a rejected route would otherwise leave no trace).
    pub fn rejection_roots(&self) -> &[DerivId] {
        match self {
            PrefixOutcome::Converged { rejections, .. }
            | PrefixOutcome::Flapping { rejections, .. } => rejections,
        }
    }
}

/// Local origination sources for one router and one prefix.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Origination {
    /// (derivation kind, lines) pairs — one per origination reason.
    pub sources: Vec<(DerivKind, Vec<LineId>)>,
}

/// Everything the engine needs per router, precomputed once per network.
pub struct RouterCtx<'a> {
    pub id: RouterId,
    pub model: &'a DeviceModel,
    pub asn: Option<Asn>,
}

/// Simulates one prefix to fixed point or cycle.
///
/// `originations[i]` lists why router `i` originates `prefix` (empty for
/// non-originators). `sessions` are the established sessions.
pub fn run_prefix(
    prefix: Prefix,
    routers: &[RouterCtx<'_>],
    sessions: &[Session],
    originations: &[Origination],
    arena: &mut DerivArena,
) -> PrefixOutcome {
    let n = routers.len();
    // Local candidate routes never change across rounds.
    let locals: Vec<Vec<Route>> = (0..n)
        .map(|i| {
            originations[i]
                .sources
                .iter()
                .map(|(kind, lines)| {
                    let deriv = arena.intern(*kind, lines.clone(), vec![]);
                    Route::local(prefix, deriv)
                })
                .collect()
        })
        .collect();

    // Sessions indexed by receiving router for the import step.
    let mut sessions_of: Vec<Vec<&Session>> = vec![Vec::new(); n];
    for s in sessions {
        sessions_of[s.a.index()].push(s);
        sessions_of[s.b.index()].push(s);
    }

    let mut best: Vec<Option<Route>> = (0..n)
        .map(|i| select_best(locals[i].iter().cloned()))
        .collect();
    let mut seen_states: HashMap<u64, usize> = HashMap::new();
    let mut history: Vec<Vec<Option<Route>>> = Vec::new();
    let mut rejections: Vec<DerivId> = Vec::new();

    let max_rounds = MAX_ROUNDS_BASE + 4 * n;
    for round in 0..max_rounds {
        let state_hash = hash_state(&best);
        if let Some(&first) = seen_states.get(&state_hash) {
            // Revisited a state: rounds [first, round) form the cycle.
            let cycle_len = round - first;
            if cycle_len == 0 {
                break; // defensive; cannot happen (hash inserted below)
            }
            let mut observed: Vec<Vec<Route>> = vec![Vec::new(); n];
            for state in &history[first..] {
                for (i, r) in state.iter().enumerate() {
                    if let Some(r) = r {
                        if !observed[i].iter().any(|o: &Route| o.key() == r.key()) {
                            observed[i].push(r.clone());
                        }
                    }
                }
            }
            rejections.sort_unstable();
            rejections.dedup();
            return PrefixOutcome::Flapping {
                first_seen_round: first,
                cycle_len,
                observed,
                rejections,
            };
        }
        seen_states.insert(state_hash, round);
        history.push(best.clone());

        // Compute the next state.
        let mut next: Vec<Option<Route>> = Vec::with_capacity(n);
        for i in 0..n {
            let me = &routers[i];
            let mut candidates: Vec<Route> = locals[i].clone();
            for session in &sessions_of[i] {
                let view = session.view_of(me.id).expect("indexed by member");
                let neighbor = &routers[view.peer.index()];
                let Some(neighbor_best) = &best[view.peer.index()] else {
                    continue;
                };
                match export(neighbor, session, me.id, neighbor_best, arena) {
                    Ok(msg) => match import(me, session, view.peer, &msg, arena) {
                        Ok(imported) => candidates.push(imported),
                        Err(Some(denied)) => rejections.push(denied),
                        Err(None) => {} // AS-path loop: not config-attributable
                    },
                    Err(Some(denied)) => rejections.push(denied),
                    Err(None) => {}
                }
            }
            next.push(select_best(candidates));
        }

        let stable = next.iter().zip(&best).all(|(a, b)| match (a, b) {
            (Some(x), Some(y)) => x.key() == y.key(),
            (None, None) => true,
            _ => false,
        });
        best = next;
        if stable {
            rejections.sort_unstable();
            rejections.dedup();
            return PrefixOutcome::Converged {
                rounds: round + 1,
                best,
                rejections,
            };
        }
    }
    // Defensive cap without a repeated state (should not happen for
    // deterministic synchronous dynamics over a finite state space, but we
    // never want an infinite loop in a repair inner loop).
    rejections.sort_unstable();
    rejections.dedup();
    PrefixOutcome::Flapping {
        first_seen_round: 0,
        cycle_len: max_rounds,
        observed: vec![
            best.into_iter()
                .flatten()
                .map(|r| vec![r])
                .next()
                .unwrap_or_default();
            n
        ],
        rejections,
    }
}

/// The export half: `sender` announces its best to `receiver` over
/// `session`. Returns `None` when suppressed (policy deny).
///
/// Deliberately **no split horizon**: eBGP advertises the best route to
/// every session peer, including the one it was learned from; the
/// *receiver's* AS-path loop check is what normally discards the echo.
/// `as-path overwrite` erases that evidence — the exact mechanism of the
/// paper's Figure 2 incident — so modelling the echo is essential.
/// `Err(Some(deriv))` = export policy denied (negative provenance);
/// `Err(None)` = no BGP process on the sender.
fn export(
    sender: &RouterCtx<'_>,
    session: &Session,
    receiver: RouterId,
    best: &Route,
    arena: &mut DerivArena,
) -> Result<Route, Option<DerivId>> {
    let sender_view = session.view_of(sender.id).ok_or(None)?;
    debug_assert_eq!(sender_view.peer, receiver);
    let own_asn = sender.asn.ok_or(None)?;

    let mut lines: Vec<LineId> = sender_view.base_lines.to_vec();
    let mut out = best.clone();
    let mut overwrote = false;
    if let Some((policy, app_line)) = sender_view.export {
        match eval_policy(sender.model, sender.id, own_asn, policy, best) {
            PolicyVerdict::Permit {
                route,
                overwrote_path,
                lines: pol_lines,
            } => {
                out = route;
                overwrote = overwrote_path;
                lines.push(app_line);
                lines.extend(pol_lines);
            }
            PolicyVerdict::Deny { lines: deny_lines } => {
                let mut all = lines;
                all.push(app_line);
                all.extend(deny_lines);
                return Err(Some(arena.intern(
                    DerivKind::ExportDenied,
                    all,
                    vec![best.deriv],
                )));
            }
        }
    }
    if !overwrote {
        out.as_path = out.as_path.prepend(own_asn);
    }
    // eBGP next-hop-self: the announcement carries the sender's address on
    // the shared link.
    out.next_hop = sender_view.local_addr;
    // Announcements reset LOCAL_PREF (it is not transitive across eBGP)
    // and keep MED/communities.
    out.local_pref = crate::route::DEFAULT_LOCAL_PREF;
    out.deriv = arena.intern(DerivKind::Export, lines, vec![best.deriv]);
    out.learned_from = None; // receiver will stamp its own view
    Ok(out)
}

/// The import half: `receiver` accepts `msg` from `sender`.
/// `Err(Some(deriv))` = import policy denied (negative provenance);
/// `Err(None)` = AS-path loop rejection (not config-attributable).
fn import(
    receiver: &RouterCtx<'_>,
    session: &Session,
    sender: RouterId,
    msg: &Route,
    arena: &mut DerivArena,
) -> Result<Route, Option<DerivId>> {
    let view = session.view_of(receiver.id).ok_or(None)?;
    debug_assert_eq!(view.peer, sender);
    let own_asn = receiver.asn.ok_or(None)?;
    // AS-path loop prevention on the path *as received*. Note that an
    // overwritten path has had the evidence erased — which is precisely
    // how the Figure 2 incident defeats this check.
    if msg.as_path.contains(own_asn) {
        return Err(None);
    }
    let mut lines: Vec<LineId> = view.base_lines.to_vec();
    let mut out = msg.clone();
    if let Some((policy, app_line)) = view.import {
        match eval_policy(receiver.model, receiver.id, own_asn, policy, msg) {
            PolicyVerdict::Permit {
                route,
                lines: pol_lines,
                ..
            } => {
                out = route;
                lines.push(app_line);
                lines.extend(pol_lines);
            }
            PolicyVerdict::Deny { lines: deny_lines } => {
                let mut all = lines;
                all.push(app_line);
                all.extend(deny_lines);
                return Err(Some(arena.intern(
                    DerivKind::ImportDenied,
                    all,
                    vec![msg.deriv],
                )));
            }
        }
    }
    out.learned_from = Some(sender);
    out.deriv = arena.intern(DerivKind::Import, lines, vec![msg.deriv]);
    Ok(out)
}

fn hash_state(best: &[Option<Route>]) -> u64 {
    let mut hasher = DefaultHasher::new();
    for r in best {
        match r {
            Some(r) => {
                1u8.hash(&mut hasher);
                r.key().hash(&mut hasher);
            }
            None => 0u8.hash(&mut hasher),
        }
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::establish;
    use acr_cfg::model::DeviceModel;
    use acr_cfg::parse::parse_device;
    use acr_topo::{gen, Role, Topology, TopologyBuilder};

    fn models_of(topo: &Topology, cfgs: &[&str]) -> Vec<DeviceModel> {
        topo.routers()
            .iter()
            .zip(cfgs)
            .map(|(r, c)| DeviceModel::from_config(&parse_device(r.name.clone(), c).unwrap()))
            .collect()
    }

    fn ctxs<'a>(topo: &Topology, models: &'a [DeviceModel]) -> Vec<RouterCtx<'a>> {
        topo.routers()
            .iter()
            .map(|r| RouterCtx {
                id: r.id,
                model: &models[r.id.index()],
                asn: models[r.id.index()].asn.map(|(a, _)| a),
            })
            .collect()
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Three routers in a line: R0 — R1 — R2, R0 originates.
    fn line3() -> (Topology, Vec<DeviceModel>) {
        let topo = gen::line(3);
        // Link 0: R0(172.16.0.1) - R1(172.16.0.2)
        // Link 1: R1(172.16.0.5) - R2(172.16.0.6)
        let cfgs = [
            "bgp 65000\n network 10.0.0.0 16\n peer 172.16.0.2 as-number 65001\n",
            "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.6 as-number 65002\n",
            "bgp 65002\n peer 172.16.0.5 as-number 65001\n",
        ];
        let models = models_of(&topo, &cfgs);
        (topo, models)
    }

    #[test]
    fn propagation_along_line() {
        let (topo, models) = line3();
        let (sessions, diags) = establish(&topo, &models);
        assert_eq!(sessions.len(), 2, "{diags:?}");
        let routers = ctxs(&topo, &models);
        let mut arena = DerivArena::new();
        let mut orig = vec![Origination::default(); 3];
        orig[0]
            .sources
            .push((DerivKind::OriginNetwork, vec![LineId::new(RouterId(0), 2)]));
        let out = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        let PrefixOutcome::Converged { best, .. } = &out else {
            panic!("should converge");
        };
        // R0: local; R1: path [65000]; R2: path [65001 65000].
        assert!(best[0].as_ref().unwrap().as_path.is_empty());
        assert_eq!(best[1].as_ref().unwrap().as_path.hops(), &[Asn(65000)]);
        assert_eq!(
            best[2].as_ref().unwrap().as_path.hops(),
            &[Asn(65001), Asn(65000)]
        );
        assert_eq!(best[1].as_ref().unwrap().learned_from, Some(RouterId(0)));
        // Next hops point along the line.
        assert_eq!(best[1].as_ref().unwrap().next_hop.to_string(), "172.16.0.1");
        assert_eq!(best[2].as_ref().unwrap().next_hop.to_string(), "172.16.0.5");
        // Provenance closure of R2's best includes R0's network line.
        let lines = arena.closure_lines([best[2].as_ref().unwrap().deriv]);
        assert!(lines.contains(&LineId::new(RouterId(0), 2)), "{lines:?}");
    }

    #[test]
    fn no_origination_means_no_routes() {
        let (topo, models) = line3();
        let (sessions, _) = establish(&topo, &models);
        let routers = ctxs(&topo, &models);
        let mut arena = DerivArena::new();
        let orig = vec![Origination::default(); 3];
        let out = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        let PrefixOutcome::Converged { best, rounds, .. } = out else {
            panic!()
        };
        assert!(best.iter().all(|b| b.is_none()));
        assert_eq!(rounds, 1);
    }

    #[test]
    fn as_loop_prevention_blocks_reimport() {
        // Ring of 3 in distinct ASes: origination propagates both ways and
        // stops; everything converges with shortest paths.
        let topo = gen::ring(3);
        // links: 0: R0-R1 (172.16.0.1/.2), 1: R1-R2 (.5/.6), 2: R2-R0 (.9/.10)
        let cfgs = [
            "bgp 65000\n network 10.0.0.0 16\n peer 172.16.0.2 as-number 65001\n peer 172.16.0.9 as-number 65002\n",
            "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.6 as-number 65002\n",
            "bgp 65002\n peer 172.16.0.5 as-number 65001\n peer 172.16.0.10 as-number 65000\n",
        ];
        let models = models_of(&topo, &cfgs);
        let (sessions, diags) = establish(&topo, &models);
        assert_eq!(sessions.len(), 3, "{diags:?}");
        let routers = ctxs(&topo, &models);
        let mut arena = DerivArena::new();
        let mut orig = vec![Origination::default(); 3];
        orig[0]
            .sources
            .push((DerivKind::OriginNetwork, vec![LineId::new(RouterId(0), 2)]));
        let out = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        let PrefixOutcome::Converged { best, .. } = out else {
            panic!("must converge")
        };
        // R1 and R2 each pick the direct one-hop path to R0.
        assert_eq!(best[1].as_ref().unwrap().as_path.len(), 1);
        assert_eq!(best[2].as_ref().unwrap().as_path.len(), 1);
    }

    #[test]
    fn import_deny_policy_filters() {
        let (topo, mut models) = line3();
        // R1 denies everything on import from R0.
        models[1] = DeviceModel::from_config(
            &parse_device(
                "R1",
                "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.1 route-policy Block import\n peer 172.16.0.6 as-number 65002\nroute-policy Block deny node 10\n",
            )
            .unwrap(),
        );
        let (sessions, _) = establish(&topo, &models);
        let routers = ctxs(&topo, &models);
        let mut arena = DerivArena::new();
        let mut orig = vec![Origination::default(); 3];
        orig[0]
            .sources
            .push((DerivKind::OriginNetwork, vec![LineId::new(RouterId(0), 2)]));
        let out = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        let PrefixOutcome::Converged { best, .. } = out else {
            panic!()
        };
        assert!(best[0].is_some());
        assert!(best[1].is_none(), "import deny must filter");
        assert!(best[2].is_none(), "nothing to propagate onward");
    }

    #[test]
    fn export_policy_prepend_lengthens_path() {
        let (topo, mut models) = line3();
        models[0] = DeviceModel::from_config(
            &parse_device(
                "R0",
                "bgp 65000\n network 10.0.0.0 16\n peer 172.16.0.2 as-number 65001\n peer 172.16.0.2 route-policy Pad export\nroute-policy Pad permit node 10\n apply as-path prepend 65000 2\n",
            )
            .unwrap(),
        );
        let (sessions, _) = establish(&topo, &models);
        let routers = ctxs(&topo, &models);
        let mut arena = DerivArena::new();
        let mut orig = vec![Origination::default(); 3];
        orig[0]
            .sources
            .push((DerivKind::OriginNetwork, vec![LineId::new(RouterId(0), 2)]));
        let out = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        let PrefixOutcome::Converged { best, .. } = out else {
            panic!()
        };
        // Prepend 2 + the normal export prepend = 3 hops at R1.
        assert_eq!(best[1].as_ref().unwrap().as_path.len(), 3);
    }

    #[test]
    fn overwrite_on_import_erases_path() {
        let (topo, mut models) = line3();
        models[1] = DeviceModel::from_config(
            &parse_device(
                "R1",
                "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.1 route-policy OW import\n peer 172.16.0.6 as-number 65002\nroute-policy OW permit node 10\n apply as-path overwrite\n",
            )
            .unwrap(),
        );
        let (sessions, _) = establish(&topo, &models);
        let routers = ctxs(&topo, &models);
        let mut arena = DerivArena::new();
        let mut orig = vec![Origination::default(); 3];
        orig[0]
            .sources
            .push((DerivKind::OriginNetwork, vec![LineId::new(RouterId(0), 2)]));
        let out = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        let PrefixOutcome::Converged { best, .. } = out else {
            panic!()
        };
        assert_eq!(best[1].as_ref().unwrap().as_path.hops(), &[Asn(65001)]);
        // R2 sees [65001 65001] (R1's overwritten path + export prepend).
        assert_eq!(
            best[2].as_ref().unwrap().as_path.hops(),
            &[Asn(65001), Asn(65001)]
        );
    }
    /// The classic BAD GADGET: three spokes around an origin hub, each
    /// preferring (via local-pref) the route heard from its clockwise
    /// neighbor over its own direct route. No stable assignment exists;
    /// the synchronous dynamics cycle with period 3 — the simulator must
    /// detect the oscillation (the paper's route flapping).
    fn bad_gadget() -> (Topology, Vec<DeviceModel>) {
        let mut b = TopologyBuilder::new();
        let o = b.router("O", Role::Backbone);
        let x = b.router("X", Role::Backbone);
        let y = b.router("Y", Role::Backbone);
        let z = b.router("Z", Role::Backbone);
        b.link(o, x); // .1/.2
        b.link(o, y); // .5/.6
        b.link(o, z); // .9/.10
        b.link(x, y); // .13/.14
        b.link(y, z); // .17/.18
        b.link(z, x); // .21/.22
        let topo = b.build();
        let cfgs = [
            // O originates and peers with all spokes.
            "bgp 65000\n network 10.0.0.0 16\n peer 172.16.0.2 as-number 65001\n peer 172.16.0.6 as-number 65002\n peer 172.16.0.10 as-number 65003\n".to_string(),
            // X prefers routes from Y.
            "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.14 as-number 65002\n peer 172.16.0.14 route-policy Prefer import\n peer 172.16.0.21 as-number 65003\nroute-policy Prefer permit node 10\n apply local-preference 200\n".to_string(),
            // Y prefers routes from Z.
            "bgp 65002\n peer 172.16.0.5 as-number 65000\n peer 172.16.0.13 as-number 65001\n peer 172.16.0.18 as-number 65003\n peer 172.16.0.18 route-policy Prefer import\nroute-policy Prefer permit node 10\n apply local-preference 200\n".to_string(),
            // Z prefers routes from X.
            "bgp 65003\n peer 172.16.0.9 as-number 65000\n peer 172.16.0.17 as-number 65002\n peer 172.16.0.22 as-number 65001\n peer 172.16.0.22 route-policy Prefer import\nroute-policy Prefer permit node 10\n apply local-preference 200\n".to_string(),
        ];
        let models: Vec<DeviceModel> = topo
            .routers()
            .iter()
            .map(|r| {
                DeviceModel::from_config(
                    &parse_device(r.name.clone(), &cfgs[r.id.index()]).unwrap(),
                )
            })
            .collect();
        (topo, models)
    }

    #[test]
    fn bad_gadget_flaps() {
        let (topo, models) = bad_gadget();
        let (sessions, diags) = establish(&topo, &models);
        assert_eq!(sessions.len(), 6, "{diags:?}");
        let routers = ctxs(&topo, &models);
        let mut arena = DerivArena::new();
        let mut orig = vec![Origination::default(); 4];
        orig[0]
            .sources
            .push((DerivKind::OriginNetwork, vec![LineId::new(RouterId(0), 2)]));
        let out = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        match out {
            PrefixOutcome::Flapping {
                cycle_len,
                ref observed,
                ..
            } => {
                assert!(
                    cycle_len >= 2,
                    "period must be non-trivial, got {cycle_len}"
                );
                // Every spoke observes at least two distinct bests.
                for (spoke, seen) in observed.iter().enumerate().take(4).skip(1) {
                    assert!(seen.len() > 1, "spoke {spoke}: {seen:?}");
                }
                // Coverage of the flap reaches the local-pref policy lines.
                let roots = out.deriv_roots();
                let lines = arena.closure_lines(roots);
                assert!(
                    lines.contains(&LineId::new(RouterId(1), 7)),
                    "flap coverage must reach X\'s apply local-preference line: {lines:?}"
                );
            }
            PrefixOutcome::Converged { best, .. } => {
                panic!("expected flapping, converged to {best:?}")
            }
        }
    }

    /// Mutual `as-path overwrite` between two transit routers produces a
    /// *stable* forwarding loop (not a flap): each keeps the other\'s
    /// echoed route because the overwrite erased the loop evidence. This
    /// is the post-partial-repair state of the paper\'s Figure 2.
    #[test]
    fn mutual_overwrite_converges_to_stable_loop() {
        let mut b = TopologyBuilder::new();
        let r0 = b.router("O", Role::Backbone);
        let r1 = b.router("X", Role::Backbone);
        let r2 = b.router("Y", Role::Backbone);
        b.link(r0, r1); // .1/.2
        b.link(r1, r2); // .5/.6
        let topo = b.build();
        // O originates; X transits honestly; Y overwrites+prefers routes
        // from X. X in turn overwrites+prefers routes from Y.
        let cfgs = [
            "bgp 65000\n network 10.0.0.0 16\n peer 172.16.0.2 as-number 65001\n".to_string(),
            "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.6 as-number 65002\n peer 172.16.0.6 route-policy OW import\nroute-policy OW permit node 10\n apply as-path overwrite\n apply local-preference 200\n".to_string(),
            "bgp 65002\n peer 172.16.0.5 as-number 65001\n peer 172.16.0.5 route-policy OW import\nroute-policy OW permit node 10\n apply as-path overwrite\n apply local-preference 200\n".to_string(),
        ];
        let models: Vec<DeviceModel> = topo
            .routers()
            .iter()
            .map(|r| {
                DeviceModel::from_config(
                    &parse_device(r.name.clone(), &cfgs[r.id.index()]).unwrap(),
                )
            })
            .collect();
        let (sessions, _) = establish(&topo, &models);
        let routers = ctxs(&topo, &models);
        let mut arena = DerivArena::new();
        let mut orig = vec![Origination::default(); 3];
        orig[0]
            .sources
            .push((DerivKind::OriginNetwork, vec![LineId::new(RouterId(0), 2)]));
        let out = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        let PrefixOutcome::Converged { best, .. } = out else {
            panic!("mutual overwrite should converge to a stable (looping) state")
        };
        // X\'s best points at Y, and Y\'s best points at X: a stable
        // control plane whose data plane loops.
        assert_eq!(
            best[1].as_ref().unwrap().learned_from,
            Some(RouterId(2)),
            "{best:?}"
        );
        assert_eq!(
            best[2].as_ref().unwrap().learned_from,
            Some(RouterId(1)),
            "{best:?}"
        );
    }

    #[test]
    fn deriv_arena_stays_bounded_under_flap() {
        let (topo, models) = bad_gadget();
        let (sessions, _) = establish(&topo, &models);
        let routers = ctxs(&topo, &models);
        let mut arena = DerivArena::new();
        let mut orig = vec![Origination::default(); 4];
        orig[0]
            .sources
            .push((DerivKind::OriginNetwork, vec![LineId::new(RouterId(0), 2)]));
        let _ = run_prefix(p("10.0.0.0/16"), &routers, &sessions, &orig, &mut arena);
        assert!(arena.len() < 128, "arena grew to {}", arena.len());
    }
}
