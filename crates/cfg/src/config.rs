//! Configuration containers and line addressing.
//!
//! [`DeviceConfig`] is the flat, ordered statement list of one router;
//! [`NetworkConfig`] maps router ids to device configs. [`LineId`] —
//! `(router, 1-based line)` — is the coordinate system shared by coverage,
//! SBFL suspiciousness and repair templates.

use crate::ast::{BlockKind, Stmt};
use acr_net_types::RouterId;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Address of one configuration line in the network: router + 1-based line
/// number (line = statement index + 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineId {
    pub router: RouterId,
    pub line: u32,
}

impl LineId {
    /// Builds a line id; `line` is 1-based.
    pub fn new(router: RouterId, line: u32) -> Self {
        debug_assert!(line >= 1, "LineId lines are 1-based");
        LineId { router, line }
    }

    /// The 0-based statement index this id refers to.
    pub fn index(self) -> usize {
        (self.line - 1) as usize
    }
}

impl fmt::Display for LineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.router, self.line)
    }
}

/// The configuration of one device: a name plus an ordered statement list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceConfig {
    name: String,
    stmts: Vec<Stmt>,
}

impl DeviceConfig {
    /// Creates a config from parts. Use [`crate::parse::parse_device`] for text.
    pub fn new(name: impl Into<String>, stmts: Vec<Stmt>) -> Self {
        DeviceConfig {
            name: name.into(),
            stmts,
        }
    }

    /// The device's human-readable name (e.g. `"A"` in Figure 2).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered statements.
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// Number of statements (= number of printed lines).
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the config has no statements.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Statement at a 1-based line number.
    pub fn line(&self, line: u32) -> Option<&Stmt> {
        self.stmts.get((line.checked_sub(1)?) as usize)
    }

    /// Iterates `(1-based line, statement)`.
    pub fn lines(&self) -> impl Iterator<Item = (u32, &Stmt)> {
        self.stmts
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32 + 1, s))
    }

    /// The block kind each statement lives in (`None` = top level), derived
    /// from header positions. Indexed by statement index.
    pub fn block_map(&self) -> Vec<Option<BlockKind>> {
        let mut out = Vec::with_capacity(self.stmts.len());
        let mut current: Option<BlockKind> = None;
        for stmt in &self.stmts {
            if stmt.opens_block().is_some() {
                current = stmt.opens_block();
                out.push(None); // the header itself is top level
            } else if stmt.required_block().is_some() {
                out.push(current);
            } else {
                current = None;
                out.push(None);
            }
        }
        out
    }

    /// Renders the configuration as text, one statement per line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for stmt in &self.stmts {
            out.push_str(&stmt.to_string());
            out.push('\n');
        }
        out
    }

    /// Mutable access for the patch engine (kept crate-private so all
    /// mutation flows through [`crate::patch`]).
    pub(crate) fn stmts_mut(&mut self) -> &mut Vec<Stmt> {
        &mut self.stmts
    }
}

impl fmt::Display for DeviceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// The configurations of an entire network, keyed by [`RouterId`].
///
/// The map is a `BTreeMap` so iteration order — and therefore every
/// downstream spectrum, ranking and search — is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetworkConfig {
    devices: BTreeMap<RouterId, DeviceConfig>,
}

impl NetworkConfig {
    /// Creates an empty network configuration.
    pub fn new() -> Self {
        NetworkConfig::default()
    }

    /// Adds (or replaces) a device's configuration.
    pub fn insert(&mut self, router: RouterId, config: DeviceConfig) {
        self.devices.insert(router, config);
    }

    /// The configuration of one device.
    pub fn device(&self, router: RouterId) -> Option<&DeviceConfig> {
        self.devices.get(&router)
    }

    /// Mutable device access for the patch engine.
    pub(crate) fn device_mut(&mut self, router: RouterId) -> Option<&mut DeviceConfig> {
        self.devices.get_mut(&router)
    }

    /// Iterates devices in router-id order.
    pub fn devices(&self) -> impl Iterator<Item = (RouterId, &DeviceConfig)> {
        self.devices.iter().map(|(r, c)| (*r, c))
    }

    /// Router ids present in the network, in order.
    pub fn routers(&self) -> Vec<RouterId> {
        self.devices.keys().copied().collect()
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the network has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Total number of configuration lines across all devices — the raw
    /// search-space unit in the paper's Figure 3 comparison.
    pub fn total_lines(&self) -> usize {
        self.devices.values().map(|c| c.len()).sum()
    }

    /// The statement a [`LineId`] addresses.
    pub fn stmt(&self, id: LineId) -> Option<&Stmt> {
        self.devices.get(&id.router)?.line(id.line)
    }

    /// Iterates every line id in the network in deterministic order.
    pub fn all_lines(&self) -> impl Iterator<Item = LineId> + '_ {
        self.devices.iter().flat_map(|(router, cfg)| {
            (1..=cfg.len() as u32).map(move |line| LineId::new(*router, line))
        })
    }

    /// A stable fingerprint over the full text, used by the incremental
    /// verifier to key its memo tables.
    pub fn fingerprint(&self) -> u64 {
        let mut hasher = DefaultHasher::new();
        for (router, cfg) in &self.devices {
            router.hash(&mut hasher);
            cfg.name().hash(&mut hasher);
            for stmt in cfg.stmts() {
                stmt.hash(&mut hasher);
            }
        }
        hasher.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_net_types::{Asn, Ipv4Addr, Prefix};

    fn sample() -> DeviceConfig {
        DeviceConfig::new(
            "A",
            vec![
                Stmt::BgpProcess(Asn(65001)),
                Stmt::RouterId(Ipv4Addr::new(1, 1, 1, 1)),
                Stmt::Network("10.0.0.0/16".parse::<Prefix>().unwrap()),
                Stmt::StaticRoute {
                    prefix: "20.0.0.0/16".parse().unwrap(),
                    next_hop: crate::ast::NextHop::Null0,
                },
            ],
        )
    }

    #[test]
    fn line_ids_are_one_based() {
        let cfg = sample();
        assert_eq!(cfg.line(1), Some(&Stmt::BgpProcess(Asn(65001))));
        assert_eq!(
            cfg.line(4).map(|s| s.to_string()).unwrap(),
            "ip route-static 20.0.0.0 16 NULL0"
        );
        assert_eq!(cfg.line(0), None);
        assert_eq!(cfg.line(5), None);
        assert_eq!(LineId::new(RouterId(0), 3).index(), 2);
    }

    #[test]
    fn block_map_tracks_headers() {
        let cfg = sample();
        let map = cfg.block_map();
        assert_eq!(map[0], None); // bgp header itself
        assert_eq!(map[1], Some(BlockKind::Bgp)); // router-id
        assert_eq!(map[2], Some(BlockKind::Bgp)); // network
        assert_eq!(map[3], None); // static route resets to top level
    }

    #[test]
    fn network_lines_and_fingerprint() {
        let mut net = NetworkConfig::new();
        net.insert(RouterId(1), sample());
        net.insert(
            RouterId(0),
            DeviceConfig::new("B", vec![Stmt::Remark("x".into())]),
        );
        assert_eq!(net.total_lines(), 5);
        let ids: Vec<LineId> = net.all_lines().collect();
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[0], LineId::new(RouterId(0), 1));
        let fp1 = net.fingerprint();
        net.insert(
            RouterId(0),
            DeviceConfig::new("B", vec![Stmt::Remark("y".into())]),
        );
        assert_ne!(
            fp1,
            net.fingerprint(),
            "fingerprint must see content changes"
        );
    }

    #[test]
    fn to_text_one_line_per_stmt() {
        let text = sample().to_text();
        assert_eq!(text.lines().count(), 4);
        assert!(text.starts_with("bgp 65001\n"));
    }
}
