//! Atomic configuration edits and patches.
//!
//! A [`Patch`] is the unit the fix layer produces: a list of [`Edit`]s,
//! each targeting one device. Edits address statements by 0-based index
//! (i.e. `LineId::index()`); [`Patch::apply`] executes a patch against a
//! [`NetworkConfig`] clone-free and returns the set of touched line ids so
//! the incremental verifier knows what to invalidate.
//!
//! Index discipline: edits inside one patch are applied **in the order
//! given**, and each edit's index refers to the document *as it is at that
//! moment* (i.e. after earlier edits of the same patch). Generators that
//! build multi-edit patches therefore either target distinct devices or
//! order edits back-to-front.

use crate::ast::Stmt;
use crate::config::{LineId, NetworkConfig};
use crate::error::CfgError;
use acr_net_types::RouterId;
use std::fmt;

/// One atomic edit on one device's statement list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Edit {
    /// Insert `stmt` so that it becomes the statement at `index`
    /// (0-based); `index == len` appends. Inserting after a block's header
    /// (or between two of its sub-statements) places the statement inside
    /// that block.
    Insert {
        router: RouterId,
        index: usize,
        stmt: Stmt,
    },
    /// Delete the statement at `index`.
    Delete { router: RouterId, index: usize },
    /// Replace the statement at `index` with `stmt`.
    Replace {
        router: RouterId,
        index: usize,
        stmt: Stmt,
    },
}

impl Edit {
    /// The device the edit touches.
    pub fn router(&self) -> RouterId {
        match self {
            Edit::Insert { router, .. }
            | Edit::Delete { router, .. }
            | Edit::Replace { router, .. } => *router,
        }
    }
}

impl fmt::Display for Edit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Edit::Insert {
                router,
                index,
                stmt,
            } => {
                write!(f, "{router}: insert @{index}: {}", stmt.to_string().trim())
            }
            Edit::Delete { router, index } => write!(f, "{router}: delete @{index}"),
            Edit::Replace {
                router,
                index,
                stmt,
            } => {
                write!(f, "{router}: replace @{index}: {}", stmt.to_string().trim())
            }
        }
    }
}

/// A candidate configuration update: an ordered list of atomic edits.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Patch {
    pub edits: Vec<Edit>,
}

impl Patch {
    /// The empty patch.
    pub fn new() -> Self {
        Patch::default()
    }

    /// A patch with a single edit.
    pub fn single(edit: Edit) -> Self {
        Patch { edits: vec![edit] }
    }

    /// Appends an edit.
    pub fn push(&mut self, edit: Edit) {
        self.edits.push(edit);
    }

    /// Concatenates two patches (the evolutionary crossover building block).
    pub fn concat(&self, other: &Patch) -> Patch {
        let mut edits = self.edits.clone();
        edits.extend(other.edits.iter().cloned());
        Patch { edits }
    }

    /// Whether the patch does nothing.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Number of atomic edits.
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// Devices touched by the patch, deduplicated, in first-touch order.
    pub fn routers(&self) -> Vec<RouterId> {
        let mut out = Vec::new();
        for e in &self.edits {
            if !out.contains(&e.router()) {
                out.push(e.router());
            }
        }
        out
    }

    /// Applies the patch to `net` in place.
    ///
    /// On success returns the line ids now occupied by inserted/replaced
    /// statements (for provenance invalidation). On failure the network may
    /// be partially edited — callers that need atomicity apply to a clone,
    /// which is what the repair engine does.
    pub fn apply(&self, net: &mut NetworkConfig) -> Result<Vec<LineId>, CfgError> {
        let mut touched = Vec::new();
        for edit in &self.edits {
            let router = edit.router();
            let device = net
                .device_mut(router)
                .ok_or_else(|| CfgError::UnknownDevice(router.to_string()))?;
            let name = device.name().to_string();
            let stmts = device.stmts_mut();
            match edit {
                Edit::Insert { index, stmt, .. } => {
                    if *index > stmts.len() {
                        return Err(CfgError::BadEditTarget {
                            device: name,
                            index: *index,
                            len: stmts.len(),
                        });
                    }
                    stmts.insert(*index, stmt.clone());
                    touched.push(LineId::new(router, *index as u32 + 1));
                }
                Edit::Delete { index, .. } => {
                    if *index >= stmts.len() {
                        return Err(CfgError::BadEditTarget {
                            device: name,
                            index: *index,
                            len: stmts.len(),
                        });
                    }
                    stmts.remove(*index);
                }
                Edit::Replace { index, stmt, .. } => {
                    if *index >= stmts.len() {
                        return Err(CfgError::BadEditTarget {
                            device: name,
                            index: *index,
                            len: stmts.len(),
                        });
                    }
                    stmts[*index] = stmt.clone();
                    touched.push(LineId::new(router, *index as u32 + 1));
                }
            }
        }
        Ok(touched)
    }

    /// Applies the patch to a clone, leaving `net` untouched.
    pub fn apply_cloned(&self, net: &NetworkConfig) -> Result<NetworkConfig, CfgError> {
        let mut clone = net.clone();
        self.apply(&mut clone)?;
        Ok(clone)
    }
}

impl fmt::Display for Patch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.edits.is_empty() {
            return f.write_str("(empty patch)");
        }
        for (i, e) in self.edits.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::NextHop;
    use crate::config::DeviceConfig;
    use crate::parse::parse_device;
    use acr_net_types::Prefix;

    fn net() -> NetworkConfig {
        let mut n = NetworkConfig::new();
        n.insert(
            RouterId(0),
            parse_device(
                "A",
                "bgp 1\n router-id 1.1.1.1\nip route-static 10.0.0.0 8 NULL0\n",
            )
            .unwrap(),
        );
        n
    }

    fn static_route(p: &str) -> Stmt {
        Stmt::StaticRoute {
            prefix: p.parse::<Prefix>().unwrap(),
            next_hop: NextHop::Null0,
        }
    }

    #[test]
    fn insert_shifts_lines() {
        let mut n = net();
        let touched = Patch::single(Edit::Insert {
            router: RouterId(0),
            index: 2,
            stmt: static_route("20.0.0.0/8"),
        })
        .apply(&mut n)
        .unwrap();
        assert_eq!(touched, vec![LineId::new(RouterId(0), 3)]);
        let d = n.device(RouterId(0)).unwrap();
        assert_eq!(d.len(), 4);
        assert_eq!(d.line(3), Some(&static_route("20.0.0.0/8")));
        assert_eq!(
            d.line(4).unwrap().to_string(),
            "ip route-static 10.0.0.0 8 NULL0"
        );
    }

    #[test]
    fn append_at_len_is_allowed() {
        let mut n = net();
        Patch::single(Edit::Insert {
            router: RouterId(0),
            index: 3,
            stmt: static_route("30.0.0.0/8"),
        })
        .apply(&mut n)
        .unwrap();
        assert_eq!(n.device(RouterId(0)).unwrap().len(), 4);
    }

    #[test]
    fn delete_and_replace() {
        let mut n = net();
        let mut p = Patch::new();
        p.push(Edit::Replace {
            router: RouterId(0),
            index: 2,
            stmt: static_route("99.0.0.0/8"),
        });
        p.push(Edit::Delete {
            router: RouterId(0),
            index: 1,
        });
        p.apply(&mut n).unwrap();
        let d = n.device(RouterId(0)).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.line(2), Some(&static_route("99.0.0.0/8")));
    }

    #[test]
    fn out_of_range_errors() {
        let mut n = net();
        let err = Patch::single(Edit::Delete {
            router: RouterId(0),
            index: 3,
        })
        .apply(&mut n)
        .unwrap_err();
        assert!(
            matches!(
                err,
                CfgError::BadEditTarget {
                    index: 3,
                    len: 3,
                    ..
                }
            ),
            "{err}"
        );
        let err = Patch::single(Edit::Insert {
            router: RouterId(0),
            index: 4,
            stmt: static_route("1.0.0.0/8"),
        })
        .apply(&mut n)
        .unwrap_err();
        assert!(matches!(err, CfgError::BadEditTarget { .. }), "{err}");
        let err = Patch::single(Edit::Delete {
            router: RouterId(9),
            index: 0,
        })
        .apply(&mut n)
        .unwrap_err();
        assert!(matches!(err, CfgError::UnknownDevice(_)), "{err}");
    }

    #[test]
    fn apply_cloned_leaves_original() {
        let n = net();
        let fp = n.fingerprint();
        let patched = Patch::single(Edit::Delete {
            router: RouterId(0),
            index: 0,
        })
        .apply_cloned(&n)
        .unwrap();
        assert_eq!(n.fingerprint(), fp);
        assert_ne!(patched.fingerprint(), fp);
    }

    #[test]
    fn insert_lands_inside_block_for_reparse() {
        // Inserting a `network` statement right after the bgp header keeps
        // the printed config parseable (it is inside the bgp block).
        let mut n = net();
        Patch::single(Edit::Insert {
            router: RouterId(0),
            index: 1,
            stmt: Stmt::Network("10.0.0.0/8".parse().unwrap()),
        })
        .apply(&mut n)
        .unwrap();
        let text = n.device(RouterId(0)).unwrap().to_text();
        assert!(
            parse_device("A", &text).is_ok(),
            "patched config must reparse:\n{text}"
        );
    }

    #[test]
    fn patch_display_and_helpers() {
        let mut p = Patch::new();
        assert!(p.is_empty());
        p.push(Edit::Delete {
            router: RouterId(1),
            index: 0,
        });
        p.push(Edit::Delete {
            router: RouterId(1),
            index: 1,
        });
        p.push(Edit::Delete {
            router: RouterId(2),
            index: 0,
        });
        assert_eq!(p.len(), 3);
        assert_eq!(p.routers(), vec![RouterId(1), RouterId(2)]);
        assert!(p.to_string().contains("r1: delete @0"));
        let q = p.concat(&Patch::single(Edit::Delete {
            router: RouterId(3),
            index: 0,
        }));
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn empty_device_insert() {
        let mut n = NetworkConfig::new();
        n.insert(RouterId(0), DeviceConfig::new("E", vec![]));
        Patch::single(Edit::Insert {
            router: RouterId(0),
            index: 0,
            stmt: static_route("1.0.0.0/8"),
        })
        .apply(&mut n)
        .unwrap();
        assert_eq!(n.device(RouterId(0)).unwrap().len(), 1);
    }
}
