//! Configuration errors.

use std::fmt;

/// Any error raised while parsing, validating or patching a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgError {
    /// A line could not be parsed. Carries the 1-based line number and the
    /// offending text.
    Parse {
        line: u32,
        text: String,
        reason: String,
    },
    /// A sub-statement appeared outside the block kind it requires.
    OutOfBlock {
        line: u32,
        text: String,
        needs: String,
    },
    /// Semantic validation failed (e.g. a peer references an undefined
    /// group).
    Semantic { device: String, reason: String },
    /// A patch edit referenced a statement index that does not exist.
    BadEditTarget {
        device: String,
        index: usize,
        len: usize,
    },
    /// A patch named a device that is not part of the network.
    UnknownDevice(String),
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::Parse { line, text, reason } => {
                write!(f, "parse error at line {line}: {reason} (`{text}`)")
            }
            CfgError::OutOfBlock { line, text, needs } => {
                write!(
                    f,
                    "line {line}: `{text}` must appear inside a `{needs}` block"
                )
            }
            CfgError::Semantic { device, reason } => {
                write!(f, "semantic error on {device}: {reason}")
            }
            CfgError::BadEditTarget { device, index, len } => {
                write!(
                    f,
                    "edit target {index} out of range for {device} ({len} statements)"
                )
            }
            CfgError::UnknownDevice(name) => write!(f, "unknown device `{name}`"),
        }
    }
}

impl std::error::Error for CfgError {}
