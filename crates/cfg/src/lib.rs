//! # acr-cfg
//!
//! The router-configuration substrate of ACR:
//!
//! - [`ast`] — a vendor-neutral (Huawei-flavoured, matching the paper's
//!   Figure 2b) statement AST. A configuration is a flat, ordered list of
//!   statements; block structure (`bgp`, `route-policy`, `acl`,
//!   `traffic-policy`, `interface`) is implied by header statements, so a
//!   statement's **line number is its index + 1** — exactly the granularity
//!   the paper's Spectrum-Based Fault Localization scores.
//! - [`parse`] — a line-oriented parser with precise, line-numbered errors.
//! - [`config`] — [`DeviceConfig`] / [`NetworkConfig`] containers and the
//!   [`LineId`] addressing scheme used by coverage, SBFL and templates.
//! - [`model`] — the *semantic* view ([`DeviceModel`]): peers with
//!   group inheritance resolved, policies, prefix lists, ACLs, PBR, static
//!   routes — every element annotated with the source line that defined it
//!   (the hook provenance needs).
//! - [`patch`] — atomic edits (insert / delete / replace) and patches,
//!   the unit of repair the fix-generation layer produces.
//! - [`mod@diff`] — LCS statement diffing of two configurations into a patch
//!   (for reviewing repairs as changesets and comparing against ground
//!   truth).
//!
//! Printing then re-parsing any configuration yields the same statement
//! list (round-trip property, see the proptest suite).

pub mod ast;
pub mod config;
pub mod diff;
pub mod error;
pub mod model;
pub mod parse;
pub mod patch;

pub use ast::{AclRuleCfg, Dir, MatchProto, NextHop, PbrAction, PeerRef, PlAction, Proto, Stmt};
pub use config::{DeviceConfig, LineId, NetworkConfig};
pub use diff::diff;
pub use error::CfgError;
pub use model::{
    AclEntry, DeviceModel, GroupCfg, MatchCond, PeerCfg, PlEntry, PolicyNode, StaticRouteCfg,
};
pub use patch::{Edit, Patch};
