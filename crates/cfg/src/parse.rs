//! Line-oriented configuration parser.
//!
//! Each non-empty, non-comment line parses to exactly one [`Stmt`]. Block
//! membership is tracked by the most recent header statement; a
//! sub-statement outside its required block is an error with the precise
//! line number. Blank lines and `#` comments are permitted in input but do
//! not survive printing (statement indices are assigned over statements
//! only, so patched configs keep dense line numbering).

use crate::ast::{
    AclRuleCfg, BlockKind, Dir, MatchProto, NextHop, PbrAction, PeerRef, PlAction, Proto, Stmt,
};
use crate::config::DeviceConfig;
use crate::error::CfgError;
use acr_net_types::{Asn, Ipv4Addr, Prefix};

/// Parses a full device configuration from text.
pub fn parse_device(name: impl Into<String>, text: &str) -> Result<DeviceConfig, CfgError> {
    let mut stmts = Vec::new();
    let mut current_block: Option<BlockKind> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i as u32 + 1;
        // Trim indentation only: `description` remarks keep their text
        // (including interior/trailing spacing) verbatim, so a printed
        // config reparses to the identical statement list.
        let line = raw.trim_start().trim_end_matches(['\n', '\r']);
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let stmt = parse_stmt(line, current_block).map_err(|reason| CfgError::Parse {
            line: line_no,
            text: line.to_string(),
            reason,
        })?;
        if let Some(block) = stmt.opens_block() {
            current_block = Some(block);
        } else if let Some(needed) = stmt.required_block() {
            if current_block != Some(needed) {
                return Err(CfgError::OutOfBlock {
                    line: line_no,
                    text: line.to_string(),
                    needs: needed.to_string(),
                });
            }
        } else {
            current_block = None;
        }
        stmts.push(stmt);
    }
    Ok(DeviceConfig::new(name, stmts))
}

/// Parses one statement given the enclosing block context (context is only
/// needed to disambiguate `apply …`, which is a policy action inside a
/// `route-policy` block and a PBR activation at top level).
pub fn parse_stmt(line: &str, block: Option<BlockKind>) -> Result<Stmt, String> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let t = |i: usize| -> Result<&str, String> {
        toks.get(i)
            .copied()
            .ok_or_else(|| "unexpected end of line".to_string())
    };
    let asn = |s: &str| -> Result<Asn, String> {
        s.parse::<u32>()
            .map(Asn)
            .map_err(|_| format!("bad AS number `{s}`"))
    };
    let ip = |s: &str| -> Result<Ipv4Addr, String> {
        s.parse().map_err(|_| format!("bad IPv4 address `{s}`"))
    };
    let num =
        |s: &str| -> Result<u32, String> { s.parse().map_err(|_| format!("bad number `{s}`")) };
    let prefix2 = |a: &str, l: &str| -> Result<Prefix, String> {
        let addr = ip(a)?;
        let len: u8 = l.parse().map_err(|_| format!("bad prefix length `{l}`"))?;
        if len > 32 {
            return Err(format!("prefix length {len} > 32"));
        }
        Ok(Prefix::new(addr, len))
    };
    let action = |s: &str| -> Result<PlAction, String> {
        match s {
            "permit" => Ok(PlAction::Permit),
            "deny" => Ok(PlAction::Deny),
            other => Err(format!("expected permit|deny, got `{other}`")),
        }
    };

    match t(0)? {
        "bgp" => Ok(Stmt::BgpProcess(asn(t(1)?)?)),
        "router-id" => Ok(Stmt::RouterId(ip(t(1)?)?)),
        "network" => Ok(Stmt::Network(prefix2(t(1)?, t(2)?)?)),
        "import-route" => match t(1)? {
            "static" => Ok(Stmt::ImportRoute(Proto::Static)),
            "connected" => Ok(Stmt::ImportRoute(Proto::Connected)),
            other => Err(format!("unknown import-route protocol `{other}`")),
        },
        "group" => {
            if t(2)? != "external" {
                return Err("expected `group <name> external`".to_string());
            }
            Ok(Stmt::GroupDef(t(1)?.to_string()))
        }
        "peer" => {
            let target = t(1)?;
            let peer_ref = match target.parse::<Ipv4Addr>() {
                Ok(addr) => PeerRef::Ip(addr),
                Err(_) => PeerRef::Group(target.to_string()),
            };
            match t(2)? {
                "as-number" => Ok(Stmt::PeerAs {
                    peer: peer_ref,
                    asn: asn(t(3)?)?,
                }),
                "group" => match peer_ref {
                    PeerRef::Ip(peer) => Ok(Stmt::PeerGroup {
                        peer,
                        group: t(3)?.to_string(),
                    }),
                    PeerRef::Group(_) => Err("`peer <x> group <g>` needs an IP peer".to_string()),
                },
                "route-policy" => {
                    let dir = match t(4)? {
                        "import" => Dir::Import,
                        "export" => Dir::Export,
                        other => return Err(format!("expected import|export, got `{other}`")),
                    };
                    Ok(Stmt::PeerPolicy {
                        peer: peer_ref,
                        policy: t(3)?.to_string(),
                        dir,
                    })
                }
                other => Err(format!("unknown peer attribute `{other}`")),
            }
        }
        "route-policy" => {
            if t(3)? != "node" {
                return Err("expected `route-policy <name> <permit|deny> node <n>`".to_string());
            }
            Ok(Stmt::RoutePolicyDef {
                name: t(1)?.to_string(),
                action: action(t(2)?)?,
                node: num(t(4)?)?,
            })
        }
        "if-match" => match t(1)? {
            "ip-prefix" => Ok(Stmt::IfMatchPrefixList(t(2)?.to_string())),
            "community" => Ok(Stmt::IfMatchCommunity(
                t(2)?.parse().map_err(|e| format!("bad community: {e}"))?,
            )),
            other => Err(format!("unknown if-match kind `{other}`")),
        },
        "apply" => match (block, t(1)?) {
            (Some(BlockKind::RoutePolicy), "as-path") => match t(2)? {
                "overwrite" => Ok(Stmt::ApplyAsPathOverwrite(match toks.get(3) {
                    Some(s) => Some(asn(s)?),
                    None => None,
                })),
                "prepend" => Ok(Stmt::ApplyAsPathPrepend {
                    asn: asn(t(3)?)?,
                    count: num(t(4)?)?,
                }),
                other => Err(format!("unknown as-path action `{other}`")),
            },
            (Some(BlockKind::RoutePolicy), "local-preference") => {
                Ok(Stmt::ApplyLocalPref(num(t(2)?)?))
            }
            (Some(BlockKind::RoutePolicy), "med") => Ok(Stmt::ApplyMed(num(t(2)?)?)),
            (Some(BlockKind::RoutePolicy), "community") => Ok(Stmt::ApplyCommunity(
                t(2)?.parse().map_err(|e| format!("bad community: {e}"))?,
            )),
            (_, "traffic-policy") => Ok(Stmt::ApplyTrafficPolicy(t(2)?.to_string())),
            (b, other) => Err(format!(
                "`apply {other}` not valid here (block: {})",
                b.map(|k| k.to_string())
                    .unwrap_or_else(|| "top level".into())
            )),
        },
        "acl" => Ok(Stmt::AclDef(num(t(1)?)?)),
        "rule" => {
            let index = num(t(1)?)?;
            let act = action(t(2)?)?;
            let proto = match t(3)? {
                "ip" => MatchProto::Ip,
                "tcp" => MatchProto::Tcp,
                "udp" => MatchProto::Udp,
                "icmp" => MatchProto::Icmp,
                other => return Err(format!("unknown ACL protocol `{other}`")),
            };
            if t(4)? != "source" {
                return Err("expected `source`".to_string());
            }
            let src = prefix2(t(5)?, t(6)?)?;
            if t(7)? != "destination" {
                return Err("expected `destination`".to_string());
            }
            let dst = prefix2(t(8)?, t(9)?)?;
            let dst_port = match toks.get(10) {
                None => None,
                Some(&"destination-port") => {
                    if t(11)? != "eq" {
                        return Err("expected `destination-port eq <p>`".to_string());
                    }
                    Some(
                        t(12)?
                            .parse::<u16>()
                            .map_err(|e| format!("bad port: {e}"))?,
                    )
                }
                Some(other) => return Err(format!("unexpected token `{other}`")),
            };
            Ok(Stmt::AclRule(AclRuleCfg {
                index,
                action: act,
                proto,
                src,
                dst,
                dst_port,
            }))
        }
        "traffic-policy" => Ok(Stmt::PbrPolicyDef(t(1)?.to_string())),
        "match" => {
            if t(1)? != "acl" {
                return Err("expected `match acl <n> <action>`".to_string());
            }
            let acl = num(t(2)?)?;
            let act = match t(3)? {
                "permit" => PbrAction::Permit,
                "deny" => PbrAction::Deny,
                "redirect" => {
                    if t(4)? != "next-hop" {
                        return Err("expected `redirect next-hop <ip>`".to_string());
                    }
                    PbrAction::Redirect(ip(t(5)?)?)
                }
                other => return Err(format!("unknown PBR action `{other}`")),
            };
            Ok(Stmt::PbrRule { acl, action: act })
        }
        "interface" => Ok(Stmt::Interface(t(1)?.to_string())),
        "ip" => {
            match t(1)? {
                "address" => Ok(Stmt::IpAddress {
                    addr: ip(t(2)?)?,
                    len: t(3)?.parse().map_err(|e| format!("bad mask length: {e}"))?,
                }),
                "prefix-list" => {
                    if t(3)? != "index" {
                        return Err("expected `ip prefix-list <list> index <n> …`".to_string());
                    }
                    let prefix = prefix2(t(6)?, t(7)?)?;
                    let mut ge = None;
                    let mut le = None;
                    let mut i = 8;
                    while i < toks.len() {
                        match toks[i] {
                            "ge" => {
                                ge =
                                    Some(t(i + 1)?.parse::<u8>().map_err(|_| {
                                        format!("bad ge `{}`", t(i + 1).unwrap_or(""))
                                    })?);
                                i += 2;
                            }
                            "le" => {
                                le =
                                    Some(t(i + 1)?.parse::<u8>().map_err(|_| {
                                        format!("bad le `{}`", t(i + 1).unwrap_or(""))
                                    })?);
                                i += 2;
                            }
                            other => return Err(format!("unexpected token `{other}`")),
                        }
                    }
                    Ok(Stmt::PrefixListEntry {
                        list: t(2)?.to_string(),
                        index: num(t(4)?)?,
                        action: action(t(5)?)?,
                        prefix,
                        ge,
                        le,
                    })
                }
                "route-static" => {
                    let prefix = prefix2(t(2)?, t(3)?)?;
                    let next_hop = match t(4)? {
                        "NULL0" => NextHop::Null0,
                        other => NextHop::Addr(ip(other)?),
                    };
                    Ok(Stmt::StaticRoute { prefix, next_hop })
                }
                other => Err(format!("unknown `ip` statement `{other}`")),
            }
        }
        "description" => {
            // Keep the remark text verbatim (minus the single separating
            // space): joining tokens would collapse interior whitespace
            // and break print→parse round-tripping.
            let rest = line.trim_start().strip_prefix("description").unwrap_or("");
            Ok(Stmt::Remark(
                rest.strip_prefix(' ').unwrap_or(rest).to_string(),
            ))
        }
        other => Err(format!("unknown statement `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2b snippet for router A, transliterated into our
    /// concrete syntax (same 16-line shape: bgp block with peers, the
    /// override policy, and the catch-all prefix list).
    pub const FIG2B_ROUTER_A: &str = "\
bgp 65001
 router-id 1.1.1.1
 network 10.70.0.0 16
 import-route static
 peer 10.1.1.2 as-number 65002
 peer 10.1.1.2 route-policy Override_All import
 group PoPSide external
 peer PoPSide as-number 65100
 peer PoPSide route-policy Override_All import
 peer 10.2.1.2 group PoPSide
route-policy Override_All permit node 10
 if-match ip-prefix default_all
 apply as-path overwrite
ip prefix-list default_all index 10 permit 0.0.0.0 0
ip route-static 20.0.0.0 16 NULL0
apply traffic-policy pbr1
";

    #[test]
    fn parses_fig2b_snippet() {
        let cfg = parse_device("A", FIG2B_ROUTER_A).unwrap();
        assert_eq!(cfg.len(), 16);
        assert_eq!(cfg.line(1), Some(&Stmt::BgpProcess(Asn(65001))));
        assert!(matches!(
            cfg.line(13),
            Some(Stmt::ApplyAsPathOverwrite(None))
        ));
        assert!(matches!(
            cfg.line(14),
            Some(Stmt::PrefixListEntry { prefix, .. }) if prefix.is_default()
        ));
    }

    #[test]
    fn roundtrip_print_reparse() {
        let cfg = parse_device("A", FIG2B_ROUTER_A).unwrap();
        let text = cfg.to_text();
        let again = parse_device("A", &text).unwrap();
        assert_eq!(cfg, again);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let cfg = parse_device("X", "# header\n\nbgp 1\n # note\n router-id 1.1.1.1\n").unwrap();
        assert_eq!(cfg.len(), 2);
    }

    #[test]
    fn sub_statement_outside_block_is_rejected() {
        let err = parse_device("X", "router-id 1.1.1.1\n").unwrap_err();
        assert!(matches!(err, CfgError::OutOfBlock { line: 1, .. }), "{err}");
        // apply policy action outside a route-policy block
        let err = parse_device("X", "apply local-preference 100\n").unwrap_err();
        assert!(matches!(err, CfgError::Parse { line: 1, .. }), "{err}");
        // a top-level statement closes the current block
        let err = parse_device(
            "X",
            "bgp 1\nip route-static 10.0.0.0 8 NULL0\n network 10.0.0.0 8\n",
        )
        .unwrap_err();
        assert!(matches!(err, CfgError::OutOfBlock { line: 3, .. }), "{err}");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_device("X", "bgp 1\n peer 10.0.0.1 as-number banana\n").unwrap_err();
        match err {
            CfgError::Parse { line, reason, .. } => {
                assert_eq!(line, 2);
                assert!(reason.contains("banana"), "{reason}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn parses_pbr_and_acl() {
        let text = "\
acl 3000
 rule 5 permit tcp source 10.0.0.0 16 destination 20.0.0.0 16 destination-port eq 80
traffic-policy pbr1
 match acl 3000 redirect next-hop 10.1.1.2
 match acl 3000 deny
apply traffic-policy pbr1
";
        let cfg = parse_device("X", text).unwrap();
        assert_eq!(cfg.len(), 6);
        assert!(matches!(
            cfg.line(4),
            Some(Stmt::PbrRule {
                acl: 3000,
                action: PbrAction::Redirect(_)
            })
        ));
        let rt = parse_device("X", &cfg.to_text()).unwrap();
        assert_eq!(cfg, rt);
    }

    #[test]
    fn parses_prefix_list_bounds() {
        let cfg = parse_device(
            "X",
            "ip prefix-list all index 10 permit 0.0.0.0 0 le 32\nip prefix-list x index 5 deny 10.0.0.0 8 ge 16 le 24\n",
        )
        .unwrap();
        match cfg.line(2).unwrap() {
            Stmt::PrefixListEntry { action, ge, le, .. } => {
                assert_eq!(*action, PlAction::Deny);
                assert_eq!((*ge, *le), (Some(16), Some(24)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn explicit_overwrite_asn() {
        let cfg = parse_device(
            "X",
            "route-policy P permit node 10\n apply as-path overwrite 65009\n",
        )
        .unwrap();
        assert_eq!(
            cfg.line(2),
            Some(&Stmt::ApplyAsPathOverwrite(Some(Asn(65009))))
        );
    }

    #[test]
    fn parses_community_match() {
        let cfg = parse_device(
            "X",
            "route-policy P permit node 10\n if-match community 65001:300\n",
        )
        .unwrap();
        assert_eq!(
            cfg.line(2),
            Some(&Stmt::IfMatchCommunity("65001:300".parse().unwrap()))
        );
        let rt = parse_device("X", &cfg.to_text()).unwrap();
        assert_eq!(cfg, rt);
        assert!(parse_device(
            "X",
            "route-policy P permit node 10\n if-match community nope\n"
        )
        .is_err());
        assert!(parse_device("X", "route-policy P permit node 10\n if-match as-path x\n").is_err());
    }

    #[test]
    fn remark_text_round_trips_verbatim() {
        // Regression: `description  a` (leading space in the remark) used
        // to reparse as `Remark("a")` because the line was fully trimmed
        // and re-joined on single spaces.
        let cfg = crate::DeviceConfig::new(
            "P",
            vec![Stmt::Remark(" a".into()), Stmt::BgpProcess(Asn(1))],
        );
        let rt = parse_device("P", &cfg.to_text()).unwrap();
        assert_eq!(cfg, rt);
        for text in ["", " ", "two  spaces", " lead and trail "] {
            let cfg = crate::DeviceConfig::new("P", vec![Stmt::Remark(text.into())]);
            let rt = parse_device("P", &cfg.to_text()).unwrap();
            assert_eq!(cfg, rt, "remark {text:?} must survive a round trip");
        }
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "frobnicate",
            "bgp abc",
            "ip prefix-list x index y permit 0.0.0.0 0",
            "peer 1.2.3.4 as-number",
            "network 10.0.0.0 99",
            "match acl 1 teleport",
        ] {
            assert!(parse_device("X", bad).is_err(), "`{bad}` should fail");
        }
    }
}
