//! Configuration diffing.
//!
//! [`diff`] computes a [`Patch`] that transforms one network configuration
//! into another — an LCS-based, per-device statement diff. The repair
//! harness uses it to compare a found repair against the ground-truth
//! intended configuration, and operators can use it to review a repair as
//! a familiar changeset.
//!
//! Invariant (property-tested): `apply(diff(a, b), a) == b`.

use crate::ast::Stmt;
use crate::config::NetworkConfig;
use crate::patch::{Edit, Patch};
use acr_net_types::RouterId;

/// Computes the patch that rewrites `from` into `to`.
///
/// Devices present only in `to` contribute inserts of their entire
/// statement list; devices present only in `from` cannot be expressed
/// (patches cannot remove devices) and are ignored — network membership
/// is topology, not configuration.
pub fn diff(from: &NetworkConfig, to: &NetworkConfig) -> Patch {
    let mut patch = Patch::new();
    for (router, to_device) in to.devices() {
        let from_stmts: &[Stmt] = from.device(router).map(|d| d.stmts()).unwrap_or(&[]);
        device_diff(router, from_stmts, to_device.stmts(), &mut patch);
    }
    patch
}

/// Emits edits turning `from` into `to` for one device.
///
/// Classic LCS alignment; non-common statements become deletes (emitted
/// back-to-front so indices stay valid) followed by inserts (front-to-
/// back against the already-deleted document).
fn device_diff(router: RouterId, from: &[Stmt], to: &[Stmt], patch: &mut Patch) {
    let keep = lcs_keep(from, to);
    // Deletions: every `from` index not kept, descending.
    let deletions: Vec<usize> = (0..from.len()).filter(|i| !keep.0.contains(i)).collect();
    for &i in deletions.iter().rev() {
        patch.push(Edit::Delete { router, index: i });
    }
    // After deletions the document is exactly the kept subsequence, in
    // order. Insertions: walk `to`, inserting every non-kept statement at
    // its final position.
    for (j, stmt) in to.iter().enumerate() {
        if !keep.1.contains(&j) {
            patch.push(Edit::Insert {
                router,
                index: j,
                stmt: stmt.clone(),
            });
        }
    }
}

/// Returns the index sets (in `a`, in `b`) of one longest common
/// subsequence.
fn lcs_keep(a: &[Stmt], b: &[Stmt]) -> (Vec<usize>, Vec<usize>) {
    let (n, m) = (a.len(), b.len());
    // DP table of LCS lengths.
    let mut dp = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i][j] = if a[i] == b[j] {
                dp[i + 1][j + 1] + 1
            } else {
                dp[i + 1][j].max(dp[i][j + 1])
            };
        }
    }
    let mut keep_a = Vec::new();
    let mut keep_b = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        if a[i] == b[j] {
            keep_a.push(i);
            keep_b.push(j);
            i += 1;
            j += 1;
        } else if dp[i + 1][j] >= dp[i][j + 1] {
            i += 1;
        } else {
            j += 1;
        }
    }
    (keep_a, keep_b)
}

/// A human-readable unified-style rendering of the differences.
pub fn render(from: &NetworkConfig, to: &NetworkConfig) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (router, to_device) in to.devices() {
        let from_stmts: &[Stmt] = from.device(router).map(|d| d.stmts()).unwrap_or(&[]);
        let (keep_a, keep_b) = lcs_keep(from_stmts, to_device.stmts());
        if keep_a.len() == from_stmts.len() && keep_b.len() == to_device.len() {
            continue; // identical
        }
        let _ = writeln!(out, "--- {}", to_device.name());
        for (i, stmt) in from_stmts.iter().enumerate() {
            if !keep_a.contains(&i) {
                let _ = writeln!(out, "-{stmt}");
            }
        }
        for (j, stmt) in to_device.stmts().iter().enumerate() {
            if !keep_b.contains(&j) {
                let _ = writeln!(out, "+{stmt}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_device;

    fn net(pairs: &[(u32, &str)]) -> NetworkConfig {
        let mut n = NetworkConfig::new();
        for (id, text) in pairs {
            n.insert(RouterId(*id), parse_device(format!("R{id}"), text).unwrap());
        }
        n
    }

    #[test]
    fn identical_configs_diff_empty() {
        let a = net(&[(0, "bgp 1\n network 10.0.0.0 8\n")]);
        let p = diff(&a, &a);
        assert!(p.is_empty());
        assert!(render(&a, &a).is_empty());
    }

    #[test]
    fn single_insertion() {
        let a = net(&[(0, "bgp 1\n")]);
        let b = net(&[(0, "bgp 1\n network 10.0.0.0 8\n")]);
        let p = diff(&a, &b);
        assert_eq!(p.len(), 1);
        assert_eq!(p.apply_cloned(&a).unwrap(), b);
    }

    #[test]
    fn single_deletion() {
        let a = net(&[(0, "bgp 1\n network 10.0.0.0 8\n import-route static\n")]);
        let b = net(&[(0, "bgp 1\n import-route static\n")]);
        let p = diff(&a, &b);
        assert_eq!(p.len(), 1);
        assert_eq!(p.apply_cloned(&a).unwrap(), b);
    }

    #[test]
    fn replacement_is_delete_plus_insert() {
        let a = net(&[(0, "bgp 1\n network 10.0.0.0 8\n")]);
        let b = net(&[(0, "bgp 1\n network 20.0.0.0 8\n")]);
        let p = diff(&a, &b);
        assert_eq!(p.len(), 2);
        assert_eq!(p.apply_cloned(&a).unwrap(), b);
    }

    #[test]
    fn multi_device_diff() {
        let a = net(&[(0, "bgp 1\n"), (1, "bgp 2\n network 10.0.0.0 8\n")]);
        let b = net(&[(0, "bgp 1\n import-route static\n"), (1, "bgp 2\n")]);
        let p = diff(&a, &b);
        assert_eq!(p.apply_cloned(&a).unwrap(), b);
        assert_eq!(p.routers().len(), 2);
    }

    #[test]
    fn render_marks_changes() {
        let a = net(&[(0, "bgp 1\n network 10.0.0.0 8\n")]);
        let b = net(&[(0, "bgp 1\n network 20.0.0.0 8\n")]);
        let text = render(&a, &b);
        assert!(text.contains("- network 10.0.0.0 8"), "{text}");
        assert!(text.contains("+ network 20.0.0.0 8"), "{text}");
    }

    #[test]
    fn duplicate_statements_align() {
        // Repeated identical lines must not confuse the alignment.
        let a = net(&[(0, "description x\ndescription x\ndescription x\n")]);
        let b = net(&[(0, "description x\ndescription y\ndescription x\n")]);
        let p = diff(&a, &b);
        assert_eq!(p.apply_cloned(&a).unwrap(), b);
    }

    #[test]
    fn device_only_in_target_is_fully_inserted() {
        let a = NetworkConfig::new();
        let mut a2 = a.clone();
        a2.insert(RouterId(0), parse_device("R0", "").unwrap());
        let b = net(&[(0, "bgp 1\n router-id 1.1.1.1\n")]);
        let p = diff(&a2, &b);
        assert_eq!(p.apply_cloned(&a2).unwrap(), b);
    }
}
