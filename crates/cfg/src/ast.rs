//! The configuration statement AST.
//!
//! A device configuration is an ordered list of [`Stmt`]s. Statements that
//! open a block (`bgp`, `route-policy … node …`, `acl`, `traffic-policy`,
//! `interface`) own the sub-statements that follow them until the next
//! header or top-level statement. `Display` renders exactly the concrete
//! syntax the parser accepts, giving a lossless print→parse round trip.

use acr_net_types::{Asn, Community, Ipv4Addr, Prefix};
use std::fmt;

/// Redistribution source protocol (`import-route <proto>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Proto {
    Static,
    Connected,
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Proto::Static => "static",
            Proto::Connected => "connected",
        })
    }
}

/// Permit/deny action used by route policies, prefix lists and ACLs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlAction {
    Permit,
    Deny,
}

impl fmt::Display for PlAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlAction::Permit => "permit",
            PlAction::Deny => "deny",
        })
    }
}

/// Direction in which a per-peer route policy applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    Import,
    Export,
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Dir::Import => "import",
            Dir::Export => "export",
        })
    }
}

/// Target of a `peer …` statement: a concrete neighbor address or a peer
/// group name (groups hold shared settings that members inherit).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PeerRef {
    Ip(Ipv4Addr),
    Group(String),
}

impl fmt::Display for PeerRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeerRef::Ip(ip) => write!(f, "{ip}"),
            PeerRef::Group(g) => f.write_str(g),
        }
    }
}

/// Next hop of a static route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NextHop {
    Addr(Ipv4Addr),
    /// Discard route (`NULL0`), used to originate aggregates.
    Null0,
}

impl fmt::Display for NextHop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NextHop::Addr(ip) => write!(f, "{ip}"),
            NextHop::Null0 => f.write_str("NULL0"),
        }
    }
}

/// Action of a PBR (policy-based routing) rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PbrAction {
    /// Forward normally (fall through to the FIB).
    Permit,
    /// Drop the packet.
    Deny,
    /// Bypass the FIB and send to this next hop.
    Redirect(Ipv4Addr),
}

impl fmt::Display for PbrAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PbrAction::Permit => f.write_str("permit"),
            PbrAction::Deny => f.write_str("deny"),
            PbrAction::Redirect(ip) => write!(f, "redirect next-hop {ip}"),
        }
    }
}

/// Protocol selector of an ACL rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchProto {
    Ip,
    Tcp,
    Udp,
    Icmp,
}

impl fmt::Display for MatchProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MatchProto::Ip => "ip",
            MatchProto::Tcp => "tcp",
            MatchProto::Udp => "udp",
            MatchProto::Icmp => "icmp",
        })
    }
}

/// Body of an ACL `rule` statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AclRuleCfg {
    pub index: u32,
    pub action: PlAction,
    pub proto: MatchProto,
    pub src: Prefix,
    pub dst: Prefix,
    /// Optional `destination-port eq N` qualifier.
    pub dst_port: Option<u16>,
}

/// One configuration statement (one printed line).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Stmt {
    // ---- block headers -------------------------------------------------
    /// `bgp <asn>` — opens the BGP process block.
    BgpProcess(Asn),
    /// `route-policy <name> <permit|deny> node <n>` — opens a policy node.
    RoutePolicyDef {
        name: String,
        action: PlAction,
        node: u32,
    },
    /// `acl <number>` — opens an ACL block.
    AclDef(u32),
    /// `traffic-policy <name>` — opens a PBR policy block.
    PbrPolicyDef(String),
    /// `interface <name>` — opens an interface block.
    Interface(String),

    // ---- bgp block -----------------------------------------------------
    /// `router-id <ip>`.
    RouterId(Ipv4Addr),
    /// `network <prefix>` — originate this prefix into BGP.
    Network(Prefix),
    /// `import-route <proto>` — redistribute into BGP.
    ImportRoute(Proto),
    /// `group <name> external` — declare a peer group.
    GroupDef(String),
    /// `peer <ip|group> as-number <asn>`.
    PeerAs { peer: PeerRef, asn: Asn },
    /// `peer <ip> group <name>` — join a peer group.
    PeerGroup { peer: Ipv4Addr, group: String },
    /// `peer <ip|group> route-policy <name> <import|export>`.
    PeerPolicy {
        peer: PeerRef,
        policy: String,
        dir: Dir,
    },

    // ---- route-policy block ---------------------------------------------
    /// `if-match ip-prefix <list>`.
    IfMatchPrefixList(String),
    /// `if-match community <asn:value>` — true when the route carries the
    /// community.
    IfMatchCommunity(Community),
    /// `apply as-path overwrite [asn]` — replace the AS_PATH with the local
    /// AS (or an explicit one). The paper's Figure 2 mechanism.
    ApplyAsPathOverwrite(Option<Asn>),
    /// `apply as-path prepend <asn> <count>`.
    ApplyAsPathPrepend { asn: Asn, count: u32 },
    /// `apply local-preference <v>`.
    ApplyLocalPref(u32),
    /// `apply med <v>`.
    ApplyMed(u32),
    /// `apply community <asn:value>`.
    ApplyCommunity(Community),

    // ---- acl block -------------------------------------------------------
    /// `rule <n> <permit|deny> <proto> source <prefix> destination <prefix>
    /// [destination-port eq <p>]`.
    AclRule(AclRuleCfg),

    // ---- traffic-policy block --------------------------------------------
    /// `match acl <n> <action>` — a PBR rule.
    PbrRule { acl: u32, action: PbrAction },

    // ---- interface block --------------------------------------------------
    /// `ip address <ip> <len>`.
    IpAddress { addr: Ipv4Addr, len: u8 },

    // ---- top level ---------------------------------------------------------
    /// `ip prefix-list <list> index <n> <permit|deny> <addr> <len> [le <n>]`.
    ///
    /// Match semantics follow the paper's worked example: an entry matches
    /// a route whose prefix is covered by the entry's prefix (so
    /// `0.0.0.0 0` matches *every* route, as the `default_all` list in
    /// Figure 2b does), optionally bounded by `ge`/`le` on the route length.
    PrefixListEntry {
        list: String,
        index: u32,
        action: PlAction,
        prefix: Prefix,
        ge: Option<u8>,
        le: Option<u8>,
    },
    /// `ip route-static <prefix> <nexthop>`.
    StaticRoute { prefix: Prefix, next_hop: NextHop },
    /// `apply traffic-policy <name>` — activate a PBR policy on this device
    /// (top level, applies to all transit traffic).
    ApplyTrafficPolicy(String),
    /// `description <text>` — free-text annotation, semantically inert.
    Remark(String),
}

impl Stmt {
    /// Whether this statement opens a block.
    pub fn is_header(&self) -> bool {
        matches!(
            self,
            Stmt::BgpProcess(_)
                | Stmt::RoutePolicyDef { .. }
                | Stmt::AclDef(_)
                | Stmt::PbrPolicyDef(_)
                | Stmt::Interface(_)
        )
    }

    /// The block a sub-statement must live in, or `None` for top-level
    /// statements and headers.
    pub fn required_block(&self) -> Option<BlockKind> {
        match self {
            Stmt::RouterId(_)
            | Stmt::Network(_)
            | Stmt::ImportRoute(_)
            | Stmt::GroupDef(_)
            | Stmt::PeerAs { .. }
            | Stmt::PeerGroup { .. }
            | Stmt::PeerPolicy { .. } => Some(BlockKind::Bgp),
            Stmt::IfMatchPrefixList(_)
            | Stmt::IfMatchCommunity(_)
            | Stmt::ApplyAsPathOverwrite(_)
            | Stmt::ApplyAsPathPrepend { .. }
            | Stmt::ApplyLocalPref(_)
            | Stmt::ApplyMed(_)
            | Stmt::ApplyCommunity(_) => Some(BlockKind::RoutePolicy),
            Stmt::AclRule(_) => Some(BlockKind::Acl),
            Stmt::PbrRule { .. } => Some(BlockKind::TrafficPolicy),
            Stmt::IpAddress { .. } => Some(BlockKind::Interface),
            _ => None,
        }
    }

    /// The block this statement opens, if it is a header.
    pub fn opens_block(&self) -> Option<BlockKind> {
        match self {
            Stmt::BgpProcess(_) => Some(BlockKind::Bgp),
            Stmt::RoutePolicyDef { .. } => Some(BlockKind::RoutePolicy),
            Stmt::AclDef(_) => Some(BlockKind::Acl),
            Stmt::PbrPolicyDef(_) => Some(BlockKind::TrafficPolicy),
            Stmt::Interface(_) => Some(BlockKind::Interface),
            _ => None,
        }
    }
}

/// The five block kinds of the configuration language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    Bgp,
    RoutePolicy,
    Acl,
    TrafficPolicy,
    Interface,
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BlockKind::Bgp => "bgp",
            BlockKind::RoutePolicy => "route-policy",
            BlockKind::Acl => "acl",
            BlockKind::TrafficPolicy => "traffic-policy",
            BlockKind::Interface => "interface",
        })
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Sub-statements are indented one space, matching Figure 2b.
        if self.required_block().is_some() {
            f.write_str(" ")?;
        }
        match self {
            Stmt::BgpProcess(asn) => write!(f, "bgp {}", asn.0),
            Stmt::RoutePolicyDef { name, action, node } => {
                write!(f, "route-policy {name} {action} node {node}")
            }
            Stmt::AclDef(n) => write!(f, "acl {n}"),
            Stmt::PbrPolicyDef(name) => write!(f, "traffic-policy {name}"),
            Stmt::Interface(name) => write!(f, "interface {name}"),
            Stmt::RouterId(ip) => write!(f, "router-id {ip}"),
            Stmt::Network(p) => write!(f, "network {} {}", p.addr(), p.len()),
            Stmt::ImportRoute(proto) => write!(f, "import-route {proto}"),
            Stmt::GroupDef(name) => write!(f, "group {name} external"),
            Stmt::PeerAs { peer, asn } => write!(f, "peer {peer} as-number {}", asn.0),
            Stmt::PeerGroup { peer, group } => write!(f, "peer {peer} group {group}"),
            Stmt::PeerPolicy { peer, policy, dir } => {
                write!(f, "peer {peer} route-policy {policy} {dir}")
            }
            Stmt::IfMatchPrefixList(list) => write!(f, "if-match ip-prefix {list}"),
            Stmt::IfMatchCommunity(c) => write!(f, "if-match community {c}"),
            Stmt::ApplyAsPathOverwrite(None) => write!(f, "apply as-path overwrite"),
            Stmt::ApplyAsPathOverwrite(Some(asn)) => {
                write!(f, "apply as-path overwrite {}", asn.0)
            }
            Stmt::ApplyAsPathPrepend { asn, count } => {
                write!(f, "apply as-path prepend {} {count}", asn.0)
            }
            Stmt::ApplyLocalPref(v) => write!(f, "apply local-preference {v}"),
            Stmt::ApplyMed(v) => write!(f, "apply med {v}"),
            Stmt::ApplyCommunity(c) => write!(f, "apply community {c}"),
            Stmt::AclRule(r) => {
                write!(
                    f,
                    "rule {} {} {} source {} {} destination {} {}",
                    r.index,
                    r.action,
                    r.proto,
                    r.src.addr(),
                    r.src.len(),
                    r.dst.addr(),
                    r.dst.len()
                )?;
                if let Some(p) = r.dst_port {
                    write!(f, " destination-port eq {p}")?;
                }
                Ok(())
            }
            Stmt::PbrRule { acl, action } => write!(f, "match acl {acl} {action}"),
            Stmt::IpAddress { addr, len } => write!(f, "ip address {addr} {len}"),
            Stmt::PrefixListEntry {
                list,
                index,
                action,
                prefix,
                ge,
                le,
            } => {
                write!(
                    f,
                    "ip prefix-list {list} index {index} {action} {} {}",
                    prefix.addr(),
                    prefix.len()
                )?;
                if let Some(g) = ge {
                    write!(f, " ge {g}")?;
                }
                if let Some(l) = le {
                    write!(f, " le {l}")?;
                }
                Ok(())
            }
            Stmt::StaticRoute { prefix, next_hop } => {
                write!(
                    f,
                    "ip route-static {} {} {next_hop}",
                    prefix.addr(),
                    prefix.len()
                )
            }
            Stmt::ApplyTrafficPolicy(name) => write!(f, "apply traffic-policy {name}"),
            Stmt::Remark(text) => write!(f, "description {text}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn headers_open_their_blocks() {
        assert_eq!(Stmt::BgpProcess(Asn(1)).opens_block(), Some(BlockKind::Bgp));
        assert!(Stmt::BgpProcess(Asn(1)).is_header());
        assert_eq!(Stmt::Network(p("10.0.0.0/8")).opens_block(), None);
        assert_eq!(
            Stmt::Network(p("10.0.0.0/8")).required_block(),
            Some(BlockKind::Bgp)
        );
        assert_eq!(
            Stmt::StaticRoute {
                prefix: p("10.0.0.0/8"),
                next_hop: NextHop::Null0
            }
            .required_block(),
            None
        );
    }

    #[test]
    fn display_matches_concrete_syntax() {
        assert_eq!(Stmt::BgpProcess(Asn(65001)).to_string(), "bgp 65001");
        assert_eq!(
            Stmt::PeerPolicy {
                peer: PeerRef::Ip(Ipv4Addr::new(10, 1, 1, 2)),
                policy: "Override_All".into(),
                dir: Dir::Import,
            }
            .to_string(),
            " peer 10.1.1.2 route-policy Override_All import"
        );
        assert_eq!(
            Stmt::PrefixListEntry {
                list: "default_all".into(),
                index: 10,
                action: PlAction::Permit,
                prefix: Prefix::DEFAULT,
                ge: None,
                le: None,
            }
            .to_string(),
            "ip prefix-list default_all index 10 permit 0.0.0.0 0"
        );
        assert_eq!(
            Stmt::PbrRule {
                acl: 3000,
                action: PbrAction::Redirect(Ipv4Addr::new(10, 1, 1, 2)),
            }
            .to_string(),
            " match acl 3000 redirect next-hop 10.1.1.2"
        );
        assert_eq!(
            Stmt::StaticRoute {
                prefix: p("20.0.0.0/16"),
                next_hop: NextHop::Null0
            }
            .to_string(),
            "ip route-static 20.0.0.0 16 NULL0"
        );
    }

    #[test]
    fn sub_statements_are_indented() {
        assert!(Stmt::RouterId(Ipv4Addr::new(1, 1, 1, 1))
            .to_string()
            .starts_with(' '));
        assert!(!Stmt::BgpProcess(Asn(1)).to_string().starts_with(' '));
    }
}
