//! Semantic device model.
//!
//! [`DeviceModel`] is the *resolved* view of a [`DeviceConfig`]: peer-group
//! inheritance applied, policies and prefix lists collected by name, ACLs
//! and PBR rules assembled. Every semantic element carries the 1-based
//! source line(s) that defined it — the attribution the provenance layer
//! threads through route derivations so that SBFL can map test coverage
//! back onto configuration lines.
//!
//! Model construction is *total* for parseable configs: dangling references
//! (a peer policy naming an undefined route-policy, an undefined prefix
//! list, a peer joining an undefined group) are recorded as
//! [`DeviceModel::warnings`] and given "match nothing" semantics rather
//! than rejected, because injected misconfigurations (the whole point of
//! ACR) frequently *are* dangling references.

use crate::ast::{AclRuleCfg, Dir, NextHop, PbrAction, PeerRef, PlAction, Proto, Stmt};
use crate::config::DeviceConfig;
use acr_net_types::{Asn, Flow, Ipv4Addr, Prefix, Protocol};
use std::collections::BTreeMap;

/// A prefix-list entry with source attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlEntry {
    pub index: u32,
    pub action: PlAction,
    pub prefix: Prefix,
    pub ge: Option<u8>,
    pub le: Option<u8>,
    /// Defining line (1-based).
    pub line: u32,
}

impl PlEntry {
    /// Whether the entry matches a route for `p`.
    ///
    /// Paper-example semantics: the entry prefix must *cover* the route
    /// prefix, with optional `ge`/`le` bounds on the route length. Hence
    /// `0.0.0.0 0` (the `default_all` list of Figure 2b) matches every
    /// route.
    pub fn matches(&self, p: Prefix) -> bool {
        self.prefix.covers(p) && p.len() >= self.ge.unwrap_or(0) && p.len() <= self.le.unwrap_or(32)
    }
}

/// One `if-match` condition of a policy node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchCond {
    /// `if-match ip-prefix <list>`.
    PrefixList(String),
    /// `if-match community <c>`.
    Community(acr_net_types::Community),
}

/// One `route-policy <name> … node <n>` block with its clauses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyNode {
    pub node: u32,
    pub action: PlAction,
    /// Header line.
    pub line: u32,
    /// `if-match` clauses, each with its line.
    pub matches: Vec<(MatchCond, u32)>,
    /// `apply …` actions in order, each with its line.
    pub applies: Vec<(ApplyAction, u32)>,
}

/// A route-policy `apply` action (resolved form of the `Apply*` statements).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyAction {
    /// Replace the AS_PATH with the given AS (`None` = the device's own).
    AsPathOverwrite(Option<Asn>),
    AsPathPrepend {
        asn: Asn,
        count: u32,
    },
    LocalPref(u32),
    Med(u32),
    Community(acr_net_types::Community),
}

/// Per-peer BGP settings after group inheritance.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PeerCfg {
    /// Remote AS and the line configuring it.
    pub asn: Option<(Asn, u32)>,
    /// Import route-policy name and the line applying it.
    pub import_policy: Option<(String, u32)>,
    /// Export route-policy name and the line applying it.
    pub export_policy: Option<(String, u32)>,
    /// Group the peer joined, with the `peer … group …` line.
    pub group: Option<(String, u32)>,
    /// Every line that contributed to this peer (incl. inherited group
    /// lines) — the session's provenance support.
    pub lines: Vec<u32>,
}

impl PeerCfg {
    /// The session-establishing lines only: everything in [`PeerCfg::lines`]
    /// except the route-policy application lines. Provenance uses these
    /// for plain session facts (a route crossed this session) and adds the
    /// policy-application line only when the policy actually ran — keeping
    /// SBFL coverage of `peer … route-policy …` lines direction-accurate.
    pub fn base_lines(&self) -> Vec<u32> {
        let skip = [
            self.import_policy.as_ref().map(|(_, l)| *l),
            self.export_policy.as_ref().map(|(_, l)| *l),
        ];
        self.lines
            .iter()
            .copied()
            .filter(|l| !skip.iter().flatten().any(|s| s == l))
            .collect()
    }
}

/// A peer group's shared settings.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GroupCfg {
    /// `group <name> external` line.
    pub def_line: Option<u32>,
    pub asn: Option<(Asn, u32)>,
    pub import_policy: Option<(String, u32)>,
    pub export_policy: Option<(String, u32)>,
}

/// A static route with attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticRouteCfg {
    pub prefix: Prefix,
    pub next_hop: NextHop,
    pub line: u32,
}

/// An ACL rule with attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AclEntry {
    pub rule: AclRuleCfg,
    pub line: u32,
}

impl AclEntry {
    /// Whether the rule matches a concrete flow.
    pub fn matches(&self, flow: &Flow) -> bool {
        let proto_ok = match self.rule.proto {
            crate::ast::MatchProto::Ip => true,
            crate::ast::MatchProto::Tcp => flow.proto == Protocol::Tcp,
            crate::ast::MatchProto::Udp => flow.proto == Protocol::Udp,
            crate::ast::MatchProto::Icmp => flow.proto == Protocol::Icmp,
        };
        proto_ok
            && self.rule.src.contains(flow.src)
            && self.rule.dst.contains(flow.dst)
            && self.rule.dst_port.is_none_or(|p| p == flow.dst_port)
    }
}

/// A PBR rule with attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PbrEntry {
    pub acl: u32,
    pub action: PbrAction,
    pub line: u32,
}

/// An interface with attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceCfg {
    pub name: String,
    pub addr: Option<(Ipv4Addr, u8, u32)>,
    pub line: u32,
}

/// The resolved semantic view of one device configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeviceModel {
    pub name: String,
    /// Local AS, with the `bgp <asn>` line.
    pub asn: Option<(Asn, u32)>,
    pub router_id: Option<(Ipv4Addr, u32)>,
    /// `network` originations.
    pub networks: Vec<(Prefix, u32)>,
    /// `import-route` redistributions.
    pub redistribute: Vec<(Proto, u32)>,
    pub interfaces: Vec<InterfaceCfg>,
    pub static_routes: Vec<StaticRouteCfg>,
    pub prefix_lists: BTreeMap<String, Vec<PlEntry>>,
    /// Policy nodes per policy name, sorted by node number.
    pub route_policies: BTreeMap<String, Vec<PolicyNode>>,
    /// Concrete peers (group inheritance resolved).
    pub peers: BTreeMap<Ipv4Addr, PeerCfg>,
    pub groups: BTreeMap<String, GroupCfg>,
    pub acls: BTreeMap<u32, Vec<AclEntry>>,
    /// PBR policies by name.
    pub pbr_policies: BTreeMap<String, Vec<PbrEntry>>,
    /// Applied PBR policy (name, line) if any.
    pub pbr_applied: Option<(String, u32)>,
    /// Dangling-reference warnings (kept, not fatal — see module docs).
    pub warnings: Vec<String>,
}

impl DeviceModel {
    /// Builds the semantic model from a parsed configuration.
    pub fn from_config(cfg: &DeviceConfig) -> DeviceModel {
        let mut m = DeviceModel {
            name: cfg.name().to_string(),
            ..DeviceModel::default()
        };
        // First pass: collect raw structures following block context.
        let mut current_policy: Option<(String, usize)> = None; // name + node idx
        let mut current_acl: Option<u32> = None;
        let mut current_pbr: Option<String> = None;
        let mut current_iface: Option<usize> = None;

        for (line, stmt) in cfg.lines() {
            match stmt {
                Stmt::BgpProcess(asn) => {
                    if m.asn.is_some() {
                        m.warnings
                            .push(format!("duplicate bgp process at line {line}"));
                    }
                    m.asn = Some((*asn, line));
                }
                Stmt::RouterId(ip) => m.router_id = Some((*ip, line)),
                Stmt::Network(p) => m.networks.push((*p, line)),
                Stmt::ImportRoute(proto) => m.redistribute.push((*proto, line)),
                Stmt::GroupDef(name) => {
                    m.groups.entry(name.clone()).or_default().def_line = Some(line);
                }
                Stmt::PeerAs { peer, asn } => match peer {
                    PeerRef::Ip(ip) => {
                        let p = m.peers.entry(*ip).or_default();
                        p.asn = Some((*asn, line));
                        p.lines.push(line);
                    }
                    PeerRef::Group(g) => {
                        m.groups.entry(g.clone()).or_default().asn = Some((*asn, line));
                    }
                },
                Stmt::PeerGroup { peer, group } => {
                    let p = m.peers.entry(*peer).or_default();
                    p.group = Some((group.clone(), line));
                    p.lines.push(line);
                }
                Stmt::PeerPolicy { peer, policy, dir } => match peer {
                    PeerRef::Ip(ip) => {
                        let p = m.peers.entry(*ip).or_default();
                        match dir {
                            Dir::Import => p.import_policy = Some((policy.clone(), line)),
                            Dir::Export => p.export_policy = Some((policy.clone(), line)),
                        }
                        p.lines.push(line);
                    }
                    PeerRef::Group(g) => {
                        let grp = m.groups.entry(g.clone()).or_default();
                        match dir {
                            Dir::Import => grp.import_policy = Some((policy.clone(), line)),
                            Dir::Export => grp.export_policy = Some((policy.clone(), line)),
                        }
                    }
                },
                Stmt::RoutePolicyDef { name, action, node } => {
                    let nodes = m.route_policies.entry(name.clone()).or_default();
                    nodes.push(PolicyNode {
                        node: *node,
                        action: *action,
                        line,
                        matches: Vec::new(),
                        applies: Vec::new(),
                    });
                    current_policy = Some((name.clone(), nodes.len() - 1));
                }
                Stmt::IfMatchPrefixList(list) => {
                    if let Some((name, idx)) = &current_policy {
                        m.route_policies.get_mut(name).unwrap()[*idx]
                            .matches
                            .push((MatchCond::PrefixList(list.clone()), line));
                    }
                }
                Stmt::IfMatchCommunity(c) => {
                    if let Some((name, idx)) = &current_policy {
                        m.route_policies.get_mut(name).unwrap()[*idx]
                            .matches
                            .push((MatchCond::Community(*c), line));
                    }
                }
                Stmt::ApplyAsPathOverwrite(asn) => push_apply(
                    &mut m,
                    &current_policy,
                    ApplyAction::AsPathOverwrite(*asn),
                    line,
                ),
                Stmt::ApplyAsPathPrepend { asn, count } => push_apply(
                    &mut m,
                    &current_policy,
                    ApplyAction::AsPathPrepend {
                        asn: *asn,
                        count: *count,
                    },
                    line,
                ),
                Stmt::ApplyLocalPref(v) => {
                    push_apply(&mut m, &current_policy, ApplyAction::LocalPref(*v), line)
                }
                Stmt::ApplyMed(v) => {
                    push_apply(&mut m, &current_policy, ApplyAction::Med(*v), line)
                }
                Stmt::ApplyCommunity(c) => {
                    push_apply(&mut m, &current_policy, ApplyAction::Community(*c), line)
                }
                Stmt::AclDef(n) => {
                    m.acls.entry(*n).or_default();
                    current_acl = Some(*n);
                }
                Stmt::AclRule(rule) => {
                    if let Some(n) = current_acl {
                        m.acls.get_mut(&n).unwrap().push(AclEntry {
                            rule: rule.clone(),
                            line,
                        });
                    }
                }
                Stmt::PbrPolicyDef(name) => {
                    m.pbr_policies.entry(name.clone()).or_default();
                    current_pbr = Some(name.clone());
                }
                Stmt::PbrRule { acl, action } => {
                    if let Some(name) = &current_pbr {
                        m.pbr_policies.get_mut(name).unwrap().push(PbrEntry {
                            acl: *acl,
                            action: *action,
                            line,
                        });
                    }
                }
                Stmt::Interface(name) => {
                    m.interfaces.push(InterfaceCfg {
                        name: name.clone(),
                        addr: None,
                        line,
                    });
                    current_iface = Some(m.interfaces.len() - 1);
                }
                Stmt::IpAddress { addr, len } => {
                    if let Some(i) = current_iface {
                        m.interfaces[i].addr = Some((*addr, *len, line));
                    }
                }
                Stmt::PrefixListEntry {
                    list,
                    index,
                    action,
                    prefix,
                    ge,
                    le,
                } => {
                    m.prefix_lists
                        .entry(list.clone())
                        .or_default()
                        .push(PlEntry {
                            index: *index,
                            action: *action,
                            prefix: *prefix,
                            ge: *ge,
                            le: *le,
                            line,
                        });
                }
                Stmt::StaticRoute { prefix, next_hop } => {
                    m.static_routes.push(StaticRouteCfg {
                        prefix: *prefix,
                        next_hop: *next_hop,
                        line,
                    });
                }
                Stmt::ApplyTrafficPolicy(name) => m.pbr_applied = Some((name.clone(), line)),
                Stmt::Remark(_) => {}
            }
            // Maintain the per-block cursors: a header selects its own
            // cursor and clears the rest; any other top-level statement
            // clears all of them; sub-statements leave them untouched
            // (the parser already guaranteed they sit in the right block).
            if stmt.is_header() {
                if !matches!(stmt, Stmt::RoutePolicyDef { .. }) {
                    current_policy = None;
                }
                if !matches!(stmt, Stmt::AclDef(_)) {
                    current_acl = None;
                }
                if !matches!(stmt, Stmt::PbrPolicyDef(_)) {
                    current_pbr = None;
                }
                if !matches!(stmt, Stmt::Interface(_)) {
                    current_iface = None;
                }
            } else if stmt.required_block().is_none() {
                current_policy = None;
                current_acl = None;
                current_pbr = None;
                current_iface = None;
            }
        }

        // Second pass: resolve group inheritance onto member peers.
        let groups = m.groups.clone();
        for peer in m.peers.values_mut() {
            if let Some((gname, gline)) = peer.group.clone() {
                match groups.get(&gname) {
                    Some(g) => {
                        if peer.asn.is_none() {
                            peer.asn = g.asn;
                            if let Some((_, l)) = g.asn {
                                peer.lines.push(l);
                            }
                        }
                        if peer.import_policy.is_none() {
                            peer.import_policy = g.import_policy.clone();
                            if let Some((_, l)) = &g.import_policy {
                                peer.lines.push(*l);
                            }
                        }
                        if peer.export_policy.is_none() {
                            peer.export_policy = g.export_policy.clone();
                            if let Some((_, l)) = &g.export_policy {
                                peer.lines.push(*l);
                            }
                        }
                        if let Some(l) = g.def_line {
                            peer.lines.push(l);
                        }
                    }
                    None => {
                        m.warnings.push(format!(
                            "peer joins undefined group `{gname}` (line {gline})"
                        ));
                    }
                }
            }
            peer.lines.sort_unstable();
            peer.lines.dedup();
        }

        // Sort policy nodes and prefix-list entries for deterministic
        // evaluation order.
        for nodes in m.route_policies.values_mut() {
            nodes.sort_by_key(|n| n.node);
        }
        for entries in m.prefix_lists.values_mut() {
            entries.sort_by_key(|e| (e.index, e.line));
        }

        // Dangling-reference warnings.
        let policy_names: Vec<String> = m.route_policies.keys().cloned().collect();
        for (ip, peer) in &m.peers {
            for pol in [&peer.import_policy, &peer.export_policy]
                .into_iter()
                .flatten()
            {
                if !policy_names.contains(&pol.0) {
                    m.warnings.push(format!(
                        "peer {ip} references undefined route-policy `{}` (line {})",
                        pol.0, pol.1
                    ));
                }
            }
        }
        for nodes in m.route_policies.values() {
            for node in nodes {
                for (cond, line) in &node.matches {
                    if let MatchCond::PrefixList(list) = cond {
                        if !m.prefix_lists.contains_key(list) {
                            m.warnings.push(format!(
                                "route-policy node at line {} matches undefined prefix-list `{list}` (line {line})",
                                node.line
                            ));
                        }
                    }
                }
            }
        }
        if let Some((name, line)) = &m.pbr_applied {
            if !m.pbr_policies.contains_key(name) {
                m.warnings.push(format!(
                    "applied traffic-policy `{name}` is undefined (line {line})"
                ));
            }
        }
        m
    }

    /// Evaluates a named prefix list against a route prefix.
    ///
    /// Returns `Some((permitted, matched_line))` when some entry matches,
    /// `None` when no entry matches (or the list is undefined) — the caller
    /// treats that as "no match" (deny), per module-level semantics.
    pub fn eval_prefix_list(&self, list: &str, p: Prefix) -> Option<(bool, u32)> {
        let entries = self.prefix_lists.get(list)?;
        entries
            .iter()
            .find(|e| e.matches(p))
            .map(|e| (e.action == PlAction::Permit, e.line))
    }

    /// Looks up an interface that owns `addr` (used to resolve which local
    /// interface a peering session binds to).
    pub fn interface_with_addr(&self, addr: Ipv4Addr) -> Option<&InterfaceCfg> {
        self.interfaces
            .iter()
            .find(|i| i.addr.map(|(a, _, _)| a) == Some(addr))
    }
}

fn push_apply(
    m: &mut DeviceModel,
    current: &Option<(String, usize)>,
    action: ApplyAction,
    line: u32,
) {
    if let Some((name, idx)) = current {
        m.route_policies.get_mut(name).unwrap()[*idx]
            .applies
            .push((action, line));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_device;

    const SAMPLE: &str = "\
bgp 65001
 router-id 1.1.1.1
 network 10.70.0.0 16
 import-route static
 peer 10.1.1.2 as-number 65002
 peer 10.1.1.2 route-policy Override_All import
 group PoPSide external
 peer PoPSide as-number 65100
 peer PoPSide route-policy Override_All import
 peer 10.2.1.2 group PoPSide
route-policy Override_All permit node 10
 if-match ip-prefix default_all
 apply as-path overwrite
ip prefix-list default_all index 10 permit 0.0.0.0 0
ip route-static 20.0.0.0 16 NULL0
";

    fn model() -> DeviceModel {
        DeviceModel::from_config(&parse_device("A", SAMPLE).unwrap())
    }

    #[test]
    fn collects_bgp_basics() {
        let m = model();
        assert_eq!(m.asn, Some((Asn(65001), 1)));
        assert_eq!(
            m.router_id.map(|(ip, _)| ip),
            Some(Ipv4Addr::new(1, 1, 1, 1))
        );
        assert_eq!(m.networks, vec![("10.70.0.0/16".parse().unwrap(), 3)]);
        assert_eq!(m.redistribute, vec![(Proto::Static, 4)]);
        assert_eq!(m.static_routes.len(), 1);
        assert!(m.warnings.is_empty(), "{:?}", m.warnings);
    }

    #[test]
    fn resolves_group_inheritance() {
        let m = model();
        let member = &m.peers[&Ipv4Addr::new(10, 2, 1, 2)];
        assert_eq!(
            member.asn,
            Some((Asn(65100), 8)),
            "asn inherited from group"
        );
        assert_eq!(
            member.import_policy.as_ref().map(|(n, _)| n.as_str()),
            Some("Override_All")
        );
        // Provenance lines include the group's defining lines.
        assert!(member.lines.contains(&7), "group def line");
        assert!(member.lines.contains(&8), "group asn line");
        assert!(member.lines.contains(&9), "group policy line");
        assert!(member.lines.contains(&10), "membership line");
        // The direct peer keeps its own settings.
        let direct = &m.peers[&Ipv4Addr::new(10, 1, 1, 2)];
        assert_eq!(direct.asn, Some((Asn(65002), 5)));
    }

    #[test]
    fn policy_structure_with_lines() {
        let m = model();
        let nodes = &m.route_policies["Override_All"];
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].line, 11);
        assert_eq!(
            nodes[0].matches,
            vec![(MatchCond::PrefixList("default_all".to_string()), 12)]
        );
        assert_eq!(
            nodes[0].applies,
            vec![(ApplyAction::AsPathOverwrite(None), 13)]
        );
    }

    #[test]
    fn default_all_matches_everything() {
        let m = model();
        for p in ["10.0.0.0/16", "0.0.0.0/0", "1.2.3.4/32"] {
            let (permit, line) = m
                .eval_prefix_list("default_all", p.parse().unwrap())
                .expect("must match");
            assert!(permit);
            assert_eq!(line, 14);
        }
    }

    #[test]
    fn prefix_list_bounds_respected() {
        let cfg = parse_device(
            "X",
            "ip prefix-list p index 10 permit 10.0.0.0 8 ge 16 le 24\n",
        )
        .unwrap();
        let m = DeviceModel::from_config(&cfg);
        assert!(m
            .eval_prefix_list("p", "10.1.0.0/16".parse().unwrap())
            .is_some());
        assert!(
            m.eval_prefix_list("p", "10.0.0.0/8".parse().unwrap())
                .is_none(),
            "below ge"
        );
        assert!(
            m.eval_prefix_list("p", "10.1.1.0/25".parse().unwrap())
                .is_none(),
            "above le"
        );
        assert!(
            m.eval_prefix_list("p", "11.0.0.0/16".parse().unwrap())
                .is_none(),
            "not covered"
        );
        assert!(m
            .eval_prefix_list("nolist", "10.0.0.0/8".parse().unwrap())
            .is_none());
    }

    #[test]
    fn dangling_references_warn_not_fail() {
        let cfg = parse_device(
            "X",
            "bgp 1\n peer 10.0.0.1 group ghost\n peer 10.0.0.2 route-policy nopol import\nroute-policy real permit node 10\n if-match ip-prefix nolist\n",
        )
        .unwrap();
        let m = DeviceModel::from_config(&cfg);
        assert_eq!(m.warnings.len(), 3, "{:?}", m.warnings);
        assert!(m.warnings.iter().any(|w| w.contains("ghost")));
        assert!(m.warnings.iter().any(|w| w.contains("nopol")));
        assert!(m.warnings.iter().any(|w| w.contains("nolist")));
    }

    #[test]
    fn acl_flow_matching() {
        let cfg = parse_device(
            "X",
            "acl 3000\n rule 5 permit tcp source 10.0.0.0 16 destination 20.0.0.0 16 destination-port eq 80\n",
        )
        .unwrap();
        let m = DeviceModel::from_config(&cfg);
        let entry = &m.acls[&3000][0];
        let mut flow = Flow::tcp(
            Ipv4Addr::new(10, 0, 1, 1),
            555,
            Ipv4Addr::new(20, 0, 1, 1),
            80,
        );
        assert!(entry.matches(&flow));
        flow.dst_port = 81;
        assert!(!entry.matches(&flow));
        flow.dst_port = 80;
        flow.proto = Protocol::Udp;
        assert!(!entry.matches(&flow));
    }

    #[test]
    fn pbr_policy_collection() {
        let cfg = parse_device(
            "X",
            "traffic-policy pbr1\n match acl 3000 permit\n match acl 3001 redirect next-hop 10.1.1.9\napply traffic-policy pbr1\n",
        )
        .unwrap();
        let m = DeviceModel::from_config(&cfg);
        assert_eq!(
            m.pbr_applied.as_ref().map(|(n, _)| n.as_str()),
            Some("pbr1")
        );
        assert_eq!(m.pbr_policies["pbr1"].len(), 2);
        assert!(m.warnings.is_empty());
    }

    #[test]
    fn duplicate_bgp_warns() {
        let cfg = parse_device("X", "bgp 1\nbgp 2\n").unwrap();
        let m = DeviceModel::from_config(&cfg);
        assert!(m.warnings.iter().any(|w| w.contains("duplicate")));
    }
}
