//! Property tests for the configuration substrate.
//!
//! The central invariant is the lossless round trip: printing any
//! statement list and re-parsing it yields the same list. Patches are
//! additionally checked for length accounting and for preserving
//! parseability when inserts respect block context.

// Gated: run with `cargo test --features heavy-tests` (vendored proptest shim).
#![cfg(feature = "heavy-tests")]

use acr_cfg::ast::{NextHop, PlAction, Proto, Stmt};
use acr_cfg::diff::diff;
use acr_cfg::parse::parse_device;
use acr_cfg::{DeviceConfig, Edit, NetworkConfig, Patch};
use acr_net_types::{Asn, Ipv4Addr, Prefix, RouterId};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::new(Ipv4Addr(a), l))
}

fn arb_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,10}".prop_map(|s| s)
}

/// Strategy over *top-level* statements (always parseable standalone).
fn arb_top_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        arb_prefix().prop_map(|p| Stmt::StaticRoute {
            prefix: p,
            next_hop: NextHop::Null0
        }),
        (arb_prefix(), any::<u32>()).prop_map(|(p, ip)| Stmt::StaticRoute {
            prefix: p,
            next_hop: NextHop::Addr(Ipv4Addr(ip)),
        }),
        (
            arb_name(),
            1u32..100,
            arb_prefix(),
            proptest::option::of(0u8..=32)
        )
            .prop_map(|(list, index, prefix, le)| Stmt::PrefixListEntry {
                list,
                index,
                action: PlAction::Permit,
                prefix,
                ge: None,
                le,
            }),
        arb_name().prop_map(Stmt::ApplyTrafficPolicy),
        // Remark text is whitespace-tokenized by the parser, so generate
        // already-normalized text (single spaces, no leading/trailing).
        "[a-z]{1,8}( [a-z]{1,8}){0,3}".prop_map(Stmt::Remark),
    ]
}

/// Strategy over a bgp block: header + valid sub-statements.
fn arb_bgp_block() -> impl Strategy<Value = Vec<Stmt>> {
    (
        1u32..65000,
        proptest::collection::vec(
            prop_oneof![
                any::<u32>().prop_map(|ip| Stmt::RouterId(Ipv4Addr(ip))),
                arb_prefix().prop_map(Stmt::Network),
                Just(Stmt::ImportRoute(Proto::Static)),
                Just(Stmt::ImportRoute(Proto::Connected)),
                (any::<u32>(), 1u32..65000).prop_map(|(ip, asn)| Stmt::PeerAs {
                    peer: acr_cfg::PeerRef::Ip(Ipv4Addr(ip)),
                    asn: Asn(asn),
                }),
                (any::<u32>(), arb_name()).prop_map(|(ip, g)| Stmt::PeerGroup {
                    peer: Ipv4Addr(ip),
                    group: g,
                }),
                arb_name().prop_map(Stmt::GroupDef),
            ],
            0..8,
        ),
    )
        .prop_map(|(asn, mut subs)| {
            let mut v = vec![Stmt::BgpProcess(Asn(asn))];
            v.append(&mut subs);
            v
        })
}

fn arb_config() -> impl Strategy<Value = DeviceConfig> {
    (
        proptest::collection::vec(arb_top_stmt(), 0..6),
        arb_bgp_block(),
        proptest::collection::vec(arb_top_stmt(), 0..6),
    )
        .prop_map(|(pre, block, post)| {
            let mut stmts = pre;
            stmts.extend(block);
            stmts.extend(post);
            DeviceConfig::new("P", stmts)
        })
}

proptest! {
    #[test]
    fn print_parse_roundtrip(cfg in arb_config()) {
        let text = cfg.to_text();
        let parsed = parse_device("P", &text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(cfg.stmts(), parsed.stmts());
    }

    #[test]
    fn patch_insert_then_delete_is_identity(cfg in arb_config(), stmt in arb_top_stmt(), pos_seed in any::<usize>()) {
        let mut net = NetworkConfig::new();
        net.insert(RouterId(0), cfg.clone());
        let before = net.fingerprint();
        // Insert at the very end (always a legal top-level position), then
        // delete the same index: the document must be unchanged.
        let idx = cfg.len();
        let _ = pos_seed; // position variation covered by roundtrip test
        Patch::single(Edit::Insert { router: RouterId(0), index: idx, stmt })
            .apply(&mut net)
            .unwrap();
        prop_assert_eq!(net.device(RouterId(0)).unwrap().len(), cfg.len() + 1);
        Patch::single(Edit::Delete { router: RouterId(0), index: idx })
            .apply(&mut net)
            .unwrap();
        prop_assert_eq!(net.fingerprint(), before);
    }

    #[test]
    fn replace_preserves_length(cfg in arb_config(), stmt in arb_top_stmt(), seed in any::<u32>()) {
        prop_assume!(!cfg.is_empty());
        let mut net = NetworkConfig::new();
        let len = cfg.len();
        net.insert(RouterId(0), cfg);
        let idx = (seed as usize) % len;
        // Replacement may produce a context-invalid document (a bgp
        // sub-statement swapped for a top-level one is fine; the reverse
        // appears only via templates which respect context), but length
        // accounting must always hold.
        Patch::single(Edit::Replace { router: RouterId(0), index: idx, stmt })
            .apply(&mut net)
            .unwrap();
        prop_assert_eq!(net.device(RouterId(0)).unwrap().len(), len);
    }

    #[test]
    fn line_ids_cover_exactly_the_statements(cfg in arb_config()) {
        let mut net = NetworkConfig::new();
        let len = cfg.len();
        net.insert(RouterId(3), cfg);
        let ids: Vec<_> = net.all_lines().collect();
        prop_assert_eq!(ids.len(), len);
        for id in ids {
            prop_assert!(net.stmt(id).is_some());
        }
        prop_assert!(net.stmt(acr_cfg::LineId::new(RouterId(3), len as u32 + 1)).is_none());
    }
}

proptest! {
    /// The differ's defining property: applying `diff(a, b)` to `a`
    /// yields `b`, for arbitrary statement lists on both sides.
    #[test]
    fn diff_then_apply_reaches_target(a in arb_config(), b in arb_config()) {
        let mut from = NetworkConfig::new();
        from.insert(RouterId(0), a);
        let mut to = NetworkConfig::new();
        to.insert(RouterId(0), DeviceConfig::new("P", b.stmts().to_vec()));
        let patch = diff(&from, &to);
        let reached = patch.apply_cloned(&from).unwrap();
        prop_assert_eq!(
            reached.device(RouterId(0)).unwrap().stmts(),
            to.device(RouterId(0)).unwrap().stmts()
        );
    }

    /// Diffing a configuration against itself is a no-op.
    #[test]
    fn self_diff_is_empty(a in arb_config()) {
        let mut net = NetworkConfig::new();
        net.insert(RouterId(0), a);
        prop_assert!(diff(&net, &net).is_empty());
    }
}
