//! The paper's Figure 2 example incident.
//!
//! Four backbone routers — A (AS 65001), B (65002), C (65003), S (65004) —
//! with a PoP on A (`10.70/16`), a PoP on B (`10.0/16`) and S's DCN
//! (`20.0/16`); customers share AS 64999, so the backbone's `as-path
//! overwrite` import policies are what keeps customer routes propagatable
//! (overwriting hides the shared customer AS from other customers' loop
//! checks).
//!
//! The **misconfiguration**: the `default_all` prefix lists gating the
//! override on A and on C contain `0.0.0.0 0` — they match *every* route,
//! so A and C also rewrite backbone transit routes. Once the new C–S
//! session is provisioned (the new intent: S's DCN must reach B's PoP),
//! the rewritten-short routes race the honest ones and `10.0/16` never
//! converges — the paper's route flapping.
//!
//! The **ground-truth repair** (what operators did): constrain A's list to
//! `{10.70/16, 20.0/16}` and C's to include `20.0/16` only.

use acr_cfg::{parse::parse_device, NetworkConfig};
use acr_net_types::{Prefix, RouterId};
use acr_topo::{Role, Topology, TopologyBuilder};
use acr_verify::{Property, Spec};

/// The assembled Figure 2 scenario.
pub struct Fig2 {
    pub topo: Topology,
    /// The misconfigured network (flapping `10.0/16`).
    pub broken: NetworkConfig,
    /// The operator-intended configuration (correct prefix lists).
    pub intended: NetworkConfig,
    pub spec: Spec,
    /// Router ids, in the paper's naming.
    pub a: RouterId,
    pub b: RouterId,
    pub c: RouterId,
    pub s: RouterId,
    pub pop_a: RouterId,
    pub pop_b: RouterId,
    pub dcn: RouterId,
}

/// Prefix of A's PoP.
pub const POP_A_PREFIX: &str = "10.70.0.0/16";
/// Prefix of B's PoP — the one that flaps.
pub const POP_B_PREFIX: &str = "10.0.0.0/16";
/// Prefix of S's DCN.
pub const DCN_PREFIX: &str = "20.0.0.0/16";

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

/// Builds the Figure 2 incident.
///
/// Link address plan (builder allocates /30s in order):
/// A–B `.1/.2`, B–C `.5/.6`, A–S `.9/.10`, C–S `.13/.14`,
/// A–PoPA `.17/.18`, B–PoPB `.21/.22`, S–DCN `.25/.26`.
pub fn fig2_incident() -> Fig2 {
    let mut tb = TopologyBuilder::new();
    let a = tb.router("A", Role::Backbone);
    let b = tb.router("B", Role::Backbone);
    let c = tb.router("C", Role::Backbone);
    let s = tb.router("S", Role::Backbone);
    let pop_a = tb.router("PoPA", Role::PoP);
    let pop_b = tb.router("PoPB", Role::PoP);
    let dcn = tb.router("DCN", Role::Dcn);
    tb.link(a, b); // 172.16.0.1 / .2
    tb.link(b, c); // .5 / .6
    tb.link(a, s); // .9 / .10
    tb.link(c, s); // .13 / .14  (the new session)
    tb.link(a, pop_a); // .17 / .18
    tb.link(b, pop_b); // .21 / .22
    tb.link(s, dcn); // .25 / .26
    tb.attach(pop_a, p(POP_A_PREFIX));
    tb.attach(pop_b, p(POP_B_PREFIX));
    tb.attach(dcn, p(DCN_PREFIX));
    let topo = tb.build();

    // ---- device configurations -------------------------------------
    // Router A, shaped after Figure 2b: peers (incl. the PoP group), the
    // Override_All policy (applied to routes received from the connected
    // PoP and from router S) and the *misconfigured* default_all list.
    let a_broken = "\
bgp 65001
 router-id 1.1.0.1
 peer 172.16.0.2 as-number 65002
 peer 172.16.0.10 as-number 65004
 peer 172.16.0.10 route-policy Override_All import
 group PoPSide external
 peer PoPSide as-number 64999
 peer PoPSide route-policy Override_All import
 peer 172.16.0.18 group PoPSide
route-policy Override_All permit node 10
 if-match ip-prefix default_all
 apply as-path overwrite
ip prefix-list default_all index 10 permit 0.0.0.0 0
";
    let a_fixed = a_broken.replace(
        "ip prefix-list default_all index 10 permit 0.0.0.0 0\n",
        "ip prefix-list default_all index 10 permit 10.70.0.0 16\nip prefix-list default_all index 20 permit 20.0.0.0 16\n",
    );

    // Router B: honest transit; its own PoP-facing override is correctly
    // scoped to the PoP's prefix.
    let b_cfg = "\
bgp 65002
 router-id 1.1.0.2
 peer 172.16.0.1 as-number 65001
 peer 172.16.0.6 as-number 65003
 peer 172.16.0.22 as-number 64999
 peer 172.16.0.22 route-policy Override_All import
route-policy Override_All permit node 10
 if-match ip-prefix default_all
 apply as-path overwrite
ip prefix-list default_all index 10 permit 10.0.0.0 16
";

    // Router C: the DCN-side session to S carries Override_All with the
    // same misconfigured catch-all list.
    let c_broken = "\
bgp 65003
 router-id 1.1.0.3
 peer 172.16.0.5 as-number 65002
 peer 172.16.0.14 as-number 65004
 peer 172.16.0.14 route-policy Override_All import
route-policy Override_All permit node 10
 if-match ip-prefix default_all
 apply as-path overwrite
ip prefix-list default_all index 10 permit 0.0.0.0 0
";
    let c_fixed = c_broken.replace(
        "ip prefix-list default_all index 10 permit 0.0.0.0 0\n",
        "ip prefix-list default_all index 10 permit 20.0.0.0 16\n",
    );

    // Router S: DCN-facing override correctly scoped to the DCN prefix.
    let s_cfg = "\
bgp 65004
 router-id 1.1.0.4
 peer 172.16.0.9 as-number 65001
 peer 172.16.0.13 as-number 65003
 peer 172.16.0.26 as-number 64999
 peer 172.16.0.26 route-policy Override_All import
route-policy Override_All permit node 10
 if-match ip-prefix default_all
 apply as-path overwrite
ip prefix-list default_all index 10 permit 20.0.0.0 16
";

    // Customer stubs: shared AS 64999, originating their prefix.
    let pop_a_cfg = "\
bgp 64999
 router-id 1.2.0.1
 network 10.70.0.0 16
 peer 172.16.0.17 as-number 65001
";
    let pop_b_cfg = "\
bgp 64999
 router-id 1.2.0.2
 network 10.0.0.0 16
 peer 172.16.0.21 as-number 65002
";
    let dcn_cfg = "\
bgp 64999
 router-id 1.2.0.3
 network 20.0.0.0 16
 peer 172.16.0.25 as-number 65004
";

    let build = |a_text: &str, c_text: &str| {
        let mut net = NetworkConfig::new();
        net.insert(a, parse_device("A", a_text).unwrap());
        net.insert(b, parse_device("B", b_cfg).unwrap());
        net.insert(c, parse_device("C", c_text).unwrap());
        net.insert(s, parse_device("S", s_cfg).unwrap());
        net.insert(pop_a, parse_device("PoPA", pop_a_cfg).unwrap());
        net.insert(pop_b, parse_device("PoPB", pop_b_cfg).unwrap());
        net.insert(dcn, parse_device("DCN", dcn_cfg).unwrap());
        net
    };
    let broken = build(a_broken, c_broken);
    let intended = build(&a_fixed, &c_fixed);

    // The three intents of the worked example, one per subnetwork (the
    // three coverage columns of Figure 2b): reach each customer network
    // from across the backbone. "PoPB" is the new DCN -> PoP of B intent.
    let spec = Spec::new()
        .with(Property::reach("PoPA", s, p(DCN_PREFIX), p(POP_A_PREFIX)))
        .with(Property::reach("PoPB", s, p(DCN_PREFIX), p(POP_B_PREFIX)))
        .with(Property::reach("DCN", b, p(POP_B_PREFIX), p(DCN_PREFIX)));

    Fig2 {
        topo,
        broken,
        intended,
        spec,
        a,
        b,
        c,
        s,
        pop_a,
        pop_b,
        dcn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_sim::Simulator;
    use acr_verify::Verifier;

    #[test]
    fn intended_configuration_is_healthy() {
        let fig2 = fig2_incident();
        let verifier = Verifier::new(&fig2.topo, &fig2.spec);
        let (v, _) = verifier.run_full(&fig2.intended);
        assert!(
            v.all_passed(),
            "{:?}",
            v.records
                .iter()
                .map(|r| (&r.property, &r.violation))
                .collect::<Vec<_>>()
        );
        assert!(v.flapping.is_empty());
    }

    #[test]
    fn broken_configuration_flaps_10_0() {
        let fig2 = fig2_incident();
        let sim = Simulator::new(&fig2.topo, &fig2.broken);
        let out = sim.run();
        let flapping = out.flapping();
        assert!(
            flapping.contains(&p(POP_B_PREFIX)),
            "10.0/16 must flap; flapping = {flapping:?}"
        );
        // The other two customer prefixes converge.
        assert!(!flapping.contains(&p(POP_A_PREFIX)), "{flapping:?}");
        assert!(!flapping.contains(&p(DCN_PREFIX)), "{flapping:?}");
    }

    #[test]
    fn broken_configuration_fails_exactly_the_popb_intent() {
        let fig2 = fig2_incident();
        let verifier = Verifier::new(&fig2.topo, &fig2.spec);
        let (v, _) = verifier.run_full(&fig2.broken);
        assert_eq!(
            v.failed_count(),
            1,
            "{:?}",
            v.records
                .iter()
                .map(|r| (&r.property, r.passed))
                .collect::<Vec<_>>()
        );
        let failed = v.failures().next().unwrap();
        assert_eq!(failed.property, "PoPB");
        assert!(matches!(
            failed.violation,
            Some(acr_verify::Violation::Flapping(_))
        ));
    }

    #[test]
    fn all_sessions_established_in_both_configs() {
        let fig2 = fig2_incident();
        for cfg in [&fig2.broken, &fig2.intended] {
            let sim = Simulator::new(&fig2.topo, cfg);
            assert_eq!(sim.sessions().len(), 7, "{:?}", sim.session_diags());
        }
    }
}
