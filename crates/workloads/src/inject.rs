//! The Table-1 incident injector.
//!
//! Each [`FaultType`] corresponds to one row of the paper's Table 1. An
//! injection is only accepted when verification of the broken network
//! actually reports at least one intent violation — mirroring §2.1, where
//! incidents are by definition captured misbehaviour — so every sampled
//! incident is a real repair problem.

use crate::netgen::GeneratedNetwork;
use acr_cfg::ast::{PbrAction, PeerRef, Stmt};
use acr_cfg::{Edit, NetworkConfig, Patch};
use acr_net_types::{Asn, RouterId, SplitMix64};
use acr_verify::Verifier;
use std::fmt;

/// The nine misconfiguration classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultType {
    /// "Missing redistribution of static route" (M, 20.8%).
    MissingRedistribution,
    /// "Missing permit rules in PBR" (M, 12.5%).
    MissingPbrPermit,
    /// "Extra redirect rule in PBR" (S, 4.2%).
    ExtraPbrRedirect,
    /// "Missing peer group" (M, 16.6%).
    MissingPeerGroup,
    /// "Extra items in peer group" (M, 12.5%).
    ExtraPeerGroupItem,
    /// "Missing a routing policy" (M, 8.3%).
    MissingRoutePolicy,
    /// "Fail to dis-enable route map" (S, 4.2%).
    StaleRouteMap,
    /// "Override to wrong AS number" (S, 4.2%).
    WrongOverrideAsn,
    /// "Missing items in ip prefix-list" (S/M, 4.2% + 12.5%).
    MissingPrefixListItems,
}

impl fmt::Display for FaultType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultType::MissingRedistribution => "missing redistribution of static route",
            FaultType::MissingPbrPermit => "missing permit rules in PBR",
            FaultType::ExtraPbrRedirect => "extra redirect rule in PBR",
            FaultType::MissingPeerGroup => "missing peer group",
            FaultType::ExtraPeerGroupItem => "extra items in peer group",
            FaultType::MissingRoutePolicy => "missing a routing policy",
            FaultType::StaleRouteMap => "fail to dis-enable route map",
            FaultType::WrongOverrideAsn => "override to wrong AS number",
            FaultType::MissingPrefixListItems => "missing items in ip prefix-list",
        })
    }
}

impl FaultType {
    /// Category of Table 1.
    pub fn category(self) -> &'static str {
        match self {
            FaultType::MissingRedistribution => "Route",
            FaultType::MissingPbrPermit | FaultType::ExtraPbrRedirect => "PBR",
            FaultType::MissingPeerGroup | FaultType::ExtraPeerGroupItem => "Peer",
            _ => "Policy",
        }
    }

    /// Whether Table 1 classifies the class as multi-line.
    pub fn is_multi_line(self) -> bool {
        !matches!(
            self,
            FaultType::ExtraPbrRedirect | FaultType::StaleRouteMap | FaultType::WrongOverrideAsn
        )
    }
}

/// Table 1: `(fault, percentage of incidents)`.
pub const TABLE1: [(FaultType, f64); 9] = [
    (FaultType::MissingRedistribution, 20.8),
    (FaultType::MissingPbrPermit, 12.5),
    (FaultType::ExtraPbrRedirect, 4.2),
    (FaultType::MissingPeerGroup, 16.6),
    (FaultType::ExtraPeerGroupItem, 12.5),
    (FaultType::MissingRoutePolicy, 8.3),
    (FaultType::StaleRouteMap, 4.2),
    (FaultType::WrongOverrideAsn, 4.2),
    (FaultType::MissingPrefixListItems, 16.7),
];

/// One injected incident.
pub struct Incident {
    pub fault: FaultType,
    /// The breaking edits, relative to the intended configuration.
    pub patch: Patch,
    /// The misconfigured network.
    pub broken: NetworkConfig,
    /// Number of violated tests right after injection.
    pub violations: usize,
    /// Human-readable summary.
    pub description: String,
}

/// Tries to inject `fault` into `net`, rotating through eligible sites
/// starting at one chosen by `seed`. Returns `None` when the network
/// offers no site where the fault is observable.
pub fn try_inject(fault: FaultType, net: &GeneratedNetwork, seed: u64) -> Option<Incident> {
    try_inject_into(fault, net, &net.cfg, seed)
}

/// Like [`try_inject`], but injects into `current` — which may already
/// carry earlier faults — instead of the pristine generated config. This
/// is the composition primitive for multi-fault scenarios: the second
/// fault's eligible structure is located in the *current* (possibly
/// already-broken) config, and the resulting incident's `violations`
/// count the failures of the combined state.
pub fn try_inject_into(
    fault: FaultType,
    net: &GeneratedNetwork,
    current: &NetworkConfig,
    seed: u64,
) -> Option<Incident> {
    let routers = current.routers();
    let n = routers.len();
    if n == 0 {
        return None;
    }
    let start = (seed as usize) % n;
    for k in 0..n {
        let router = routers[(start + k) % n];
        if let Some(incident) = inject_at(fault, net, current, router) {
            return Some(incident);
        }
    }
    None
}

/// Injects `fault` at a specific `router` of `current`, with no site
/// rotation. Used by cascading-fault composition, where the second
/// fault's site is dictated by the first fault's converged state.
pub fn inject_at(
    fault: FaultType,
    net: &GeneratedNetwork,
    current: &NetworkConfig,
    router: RouterId,
) -> Option<Incident> {
    let patch = build_fault(fault, net, current, router)?;
    let broken = patch.apply_cloned(current).ok()?;
    let verifier = Verifier::new(&net.topo, &net.spec);
    let (v, _) = verifier.run_full(&broken);
    let violations = v.failed_count();
    if violations == 0 {
        return None; // latent fault — not an incident
    }
    let description = format!(
        "{fault} on {} ({} violated test{})",
        net.topo.router(router).name,
        violations,
        if violations == 1 { "" } else { "s" }
    );
    Some(Incident {
        fault,
        patch,
        broken,
        violations,
        description,
    })
}

/// Samples `count` incidents following the Table-1 distribution.
/// Fault classes inapplicable to the given network are resampled.
pub fn sample_incidents(net: &GeneratedNetwork, count: usize, seed: u64) -> Vec<Incident> {
    let mut rng = SplitMix64::new(seed);
    let total: f64 = TABLE1.iter().map(|(_, r)| r).sum();
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while out.len() < count && attempts < count * 20 {
        attempts += 1;
        let mut pick = rng.next_f64() * total;
        let mut fault = TABLE1[0].0;
        for (f, ratio) in TABLE1 {
            if pick < ratio {
                fault = f;
                break;
            }
            pick -= ratio;
        }
        if let Some(incident) = try_inject(fault, net, rng.next_u64()) {
            out.push(incident);
        }
    }
    out
}

/// Builds the breaking patch for `fault` at `router` of `cfg`, or `None`
/// when the device has no eligible structure.
fn build_fault(
    fault: FaultType,
    net: &GeneratedNetwork,
    cfg: &NetworkConfig,
    router: RouterId,
) -> Option<Patch> {
    let device = cfg.device(router)?;
    let stmts = device.stmts();
    let find = |pred: &dyn Fn(&Stmt) -> bool| stmts.iter().position(pred);
    let find_all = |pred: &dyn Fn(&Stmt) -> bool| -> Vec<usize> {
        stmts
            .iter()
            .enumerate()
            .filter(|(_, s)| pred(s))
            .map(|(i, _)| i)
            .collect()
    };
    let delete_desc = |mut idxs: Vec<usize>| -> Patch {
        idxs.sort_unstable();
        let mut patch = Patch::new();
        for i in idxs.into_iter().rev() {
            patch.push(Edit::Delete { router, index: i });
        }
        patch
    };

    match fault {
        FaultType::MissingRedistribution => {
            let import = find(&|s| matches!(s, Stmt::ImportRoute(acr_cfg::Proto::Static)))?;
            let statics = find_all(&|s| matches!(s, Stmt::StaticRoute { .. }));
            if statics.is_empty() {
                return None;
            }
            let mut idxs = vec![import];
            idxs.extend(statics);
            Some(delete_desc(idxs))
        }
        FaultType::MissingPbrPermit => {
            // Drop the permit PBR rule and the ACL rules backing it.
            let permit_rule = find(&|s| {
                matches!(
                    s,
                    Stmt::PbrRule {
                        action: PbrAction::Permit,
                        ..
                    }
                )
            })?;
            let Stmt::PbrRule { acl, .. } = &stmts[permit_rule] else {
                unreachable!()
            };
            let acl = *acl;
            // The ACL's rules follow its header.
            let acl_header = find(&|s| matches!(s, Stmt::AclDef(n) if *n == acl))?;
            let mut idxs = vec![permit_rule];
            for (i, s) in stmts.iter().enumerate().skip(acl_header + 1) {
                match s {
                    Stmt::AclRule(_) => idxs.push(i),
                    _ => break,
                }
            }
            Some(delete_desc(idxs))
        }
        FaultType::ExtraPbrRedirect => {
            // Insert a catch-all redirect at the top of the applied policy,
            // aimed at a deterministic neighbor.
            let applied = device.stmts().iter().find_map(|s| match s {
                Stmt::ApplyTrafficPolicy(name) => Some(name.clone()),
                _ => None,
            })?;
            let policy_header = find(&|s| matches!(s, Stmt::PbrPolicyDef(n) if *n == applied))?;
            let broad_acl = find_all(&|s| matches!(s, Stmt::AclDef(_)))
                .into_iter()
                .filter_map(|i| match &stmts[i] {
                    Stmt::AclDef(n) => Some(*n),
                    _ => None,
                })
                .max()?;
            let (_, link) = *net.topo.neighbors(router).first()?;
            let target = link.peer_of(router)?.addr;
            Some(Patch::single(Edit::Insert {
                router,
                index: policy_header + 1,
                stmt: Stmt::PbrRule {
                    acl: broad_acl,
                    action: PbrAction::Redirect(target),
                },
            }))
        }
        FaultType::MissingPeerGroup => {
            // Delete the group definition and its shared settings; members
            // keep their `peer … group …` lines and lose AS + policy.
            let def = find(&|s| matches!(s, Stmt::GroupDef(_)))?;
            let Stmt::GroupDef(group) = &stmts[def] else {
                unreachable!()
            };
            let group = group.clone();
            let shared = find_all(&|s| match s {
                Stmt::PeerAs {
                    peer: PeerRef::Group(g),
                    ..
                } => *g == group,
                Stmt::PeerPolicy {
                    peer: PeerRef::Group(g),
                    ..
                } => *g == group,
                _ => false,
            });
            let mut idxs = vec![def];
            idxs.extend(shared);
            Some(delete_desc(idxs))
        }
        FaultType::ExtraPeerGroupItem => {
            // Add a backbone neighbor into the customer group.
            let def = find(&|s| matches!(s, Stmt::GroupDef(_)))?;
            let Stmt::GroupDef(group) = &stmts[def] else {
                unreachable!()
            };
            let group = group.clone();
            let model = acr_cfg::DeviceModel::from_config(device);
            let backbone_peer = net
                .topo
                .neighbors(router)
                .into_iter()
                .find_map(|(_n, link)| {
                    let addr = link.peer_of(router)?.addr;
                    let configured = model.peers.get(&addr)?;
                    // A directly configured (non-group) peer is backbone-side.
                    configured.group.is_none().then_some(addr)
                })?;
            Some(Patch::single(Edit::Insert {
                router,
                index: def + 1,
                stmt: Stmt::PeerGroup {
                    peer: backbone_peer,
                    group,
                },
            }))
        }
        FaultType::MissingRoutePolicy => {
            // Delete a policy's body but keep its applications dangling.
            let header = find(&|s| matches!(s, Stmt::RoutePolicyDef { .. }))?;
            let mut idxs = vec![header];
            for (i, s) in stmts.iter().enumerate().skip(header + 1) {
                if s.required_block() == Some(acr_cfg::ast::BlockKind::RoutePolicy) {
                    idxs.push(i);
                } else {
                    break;
                }
            }
            Some(delete_desc(idxs))
        }
        FaultType::StaleRouteMap => {
            // Apply an existing customer-ingress policy to a backbone peer.
            let policy = stmts.iter().find_map(|s| match s {
                Stmt::RoutePolicyDef { name, .. } => Some(name.clone()),
                _ => None,
            })?;
            let model = acr_cfg::DeviceModel::from_config(device);
            let (addr, line) = model.peers.iter().find_map(|(addr, cfg)| {
                (cfg.import_policy.is_none() && cfg.group.is_none())
                    .then(|| (*addr, cfg.lines.first().copied().unwrap_or(1)))
            })?;
            Some(Patch::single(Edit::Insert {
                router,
                index: line as usize, // right after the peer's first line
                stmt: Stmt::PeerPolicy {
                    peer: PeerRef::Ip(addr),
                    policy,
                    dir: acr_cfg::Dir::Import,
                },
            }))
        }
        FaultType::WrongOverrideAsn => {
            let idx = find(&|s| matches!(s, Stmt::ApplyAsPathOverwrite(None)))?;
            Some(Patch::single(Edit::Replace {
                router,
                index: idx,
                stmt: Stmt::ApplyAsPathOverwrite(Some(Asn(crate::netgen::CUSTOMER_AS))),
            }))
        }
        FaultType::MissingPrefixListItems => {
            let entries = find_all(&|s| matches!(s, Stmt::PrefixListEntry { .. }));
            if entries.is_empty() {
                return None;
            }
            // Drop half the entries (at least one) — S or M depending on
            // list size, as in Table 1's split.
            let k = (entries.len() / 2).max(1);
            Some(delete_desc(entries.into_iter().take(k).collect()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netgen::generate;
    use acr_topo::gen;

    fn mesh() -> GeneratedNetwork {
        generate(&gen::full_mesh(6))
    }

    fn wan48() -> GeneratedNetwork {
        generate(&gen::wan(4, 8))
    }

    #[test]
    fn missing_redistribution_injects_on_mesh() {
        let net = mesh();
        let inc = try_inject(FaultType::MissingRedistribution, &net, 0).expect("eligible site");
        assert!(inc.violations >= 1);
        assert!(inc.patch.len() >= 2, "M-class fault: {:?}", inc.patch);
    }

    #[test]
    fn pbr_permit_fault_injects_on_mesh() {
        let net = mesh();
        let permit = try_inject(FaultType::MissingPbrPermit, &net, 1).expect("guarded router");
        assert!(permit.violations >= 1, "{}", permit.description);
        // A redirect detour in a *full mesh* still delivers — the fault is
        // latent there and the injector must refuse it.
        assert!(try_inject(FaultType::ExtraPbrRedirect, &net, 1).is_none());
    }

    #[test]
    fn pbr_redirect_fault_loops_on_wan() {
        let net = wan48();
        let redirect =
            try_inject(FaultType::ExtraPbrRedirect, &net, 0).expect("line backbone loops");
        assert!(redirect.violations >= 1, "{}", redirect.description);
        assert!(!redirect.fault.is_multi_line());
    }

    #[test]
    fn peer_group_faults_inject_on_wan() {
        let net = wan48();
        let missing = try_inject(FaultType::MissingPeerGroup, &net, 0).expect("grouped backbones");
        assert!(missing.violations >= 1, "{}", missing.description);
        assert!(missing.fault.is_multi_line());
        let extra = try_inject(FaultType::ExtraPeerGroupItem, &net, 0).expect("bb peers exist");
        assert!(extra.violations >= 1, "{}", extra.description);
    }

    #[test]
    fn policy_faults_inject_on_wan() {
        let net = wan48();
        for fault in [
            FaultType::MissingRoutePolicy,
            FaultType::StaleRouteMap,
            FaultType::WrongOverrideAsn,
            FaultType::MissingPrefixListItems,
        ] {
            let inc = try_inject(fault, &net, 2);
            assert!(inc.is_some(), "{fault} should inject");
            assert!(inc.unwrap().violations >= 1);
        }
    }

    #[test]
    fn sampler_respects_applicability() {
        let net = wan48();
        let incidents = sample_incidents(&net, 12, 42);
        assert!(incidents.len() >= 10, "got {}", incidents.len());
        for inc in &incidents {
            assert!(inc.violations >= 1, "{}", inc.description);
        }
    }

    #[test]
    fn second_fault_composes_onto_broken_base() {
        let net = wan48();
        let first = try_inject(FaultType::MissingPrefixListItems, &net, 0).expect("first fault");
        let second =
            try_inject_into(FaultType::WrongOverrideAsn, &net, &first.broken, 1).expect("second");
        // The composed config carries both breaking patches.
        assert!(second.violations >= first.violations.min(1));
        assert_ne!(
            second.broken.fingerprint(),
            first.broken.fingerprint(),
            "second injection must change the config"
        );
        // And the composed config still reparses.
        for (r, d) in second.broken.devices() {
            let text = d.to_text();
            acr_cfg::parse::parse_device(d.name(), &text)
                .unwrap_or_else(|e| panic!("composed fault on {r}: {e}\n{text}"));
        }
    }

    #[test]
    fn broken_configs_reparse() {
        let net = mesh();
        for (fault, _) in TABLE1 {
            if let Some(inc) = try_inject(fault, &net, 3) {
                for (r, d) in inc.broken.devices() {
                    let text = d.to_text();
                    acr_cfg::parse::parse_device(d.name(), &text)
                        .unwrap_or_else(|e| panic!("{fault} on {r}: {e}\n{text}"));
                }
            }
        }
    }
}
