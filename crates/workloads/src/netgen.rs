//! Role-structured configuration generation.
//!
//! Mirrors the architecture of the paper's network (and of Figure 2):
//!
//! - edge routers (PoP / DCN / leaf / edge roles) share the **customer AS**
//!   [`CUSTOMER_AS`] and originate their attached prefixes,
//! - backbone/spine routers run distinct ASes and apply an `Override_Cust`
//!   import policy on every customer-facing session: it permits-and-
//!   overwrites exactly the adjacent customers' prefixes (hiding the
//!   shared customer AS — without it, other customers' loop checks reject
//!   the routes) and implicitly denies everything else (ingress filter),
//! - backbones with two or more customers use a **peer group** (`Cust`)
//!   carrying the shared AS and policy — the structure the Table-1
//!   peer-group faults corrupt,
//! - origination alternates between `network` statements and
//!   `static + import-route static` (the redistribution-fault surface),
//! - every fourth backbone router applies a PBR **guard** traffic policy
//!   (permit legitimate space, then deny-all) — the PBR-fault surface.
//!
//! The generated [`Spec`] asserts reachability of every attachment from
//! two deterministic remote routers, giving SBFL a pass/fail spectrum.

use acr_cfg::{parse::parse_device, NetworkConfig};
use acr_net_types::{Asn, Prefix, RouterId};
use acr_topo::{Role, Topology};
use acr_verify::{Property, Spec};
use std::fmt::Write as _;

/// The shared AS of all customer (edge) routers.
pub const CUSTOMER_AS: u32 = 64999;

/// Base AS for backbone routers (`65000 + router id`).
pub const BACKBONE_AS_BASE: u32 = 65000;

/// A generated workload: topology + intended configuration + spec.
pub struct GeneratedNetwork {
    pub topo: Topology,
    pub cfg: NetworkConfig,
    pub spec: Spec,
}

/// Whether a role is customer-side.
pub fn is_customer(role: Role) -> bool {
    matches!(role, Role::PoP | Role::Dcn | Role::Leaf | Role::Edge)
}

/// The AS a router runs under the generation scheme.
pub fn asn_of(topo: &Topology, id: RouterId) -> Asn {
    if is_customer(topo.router(id).role) {
        Asn(CUSTOMER_AS)
    } else {
        Asn(BACKBONE_AS_BASE + id.0)
    }
}

/// Generates the intended (healthy) configuration and spec for `topo`.
pub fn generate(topo: &Topology) -> GeneratedNetwork {
    let mut cfg = NetworkConfig::new();
    for info in topo.routers() {
        let text = if is_customer(info.role) {
            customer_config(topo, info.id)
        } else {
            backbone_config(topo, info.id)
        };
        let device = parse_device(info.name.clone(), &text).unwrap_or_else(|e| {
            panic!("generated config for {} must parse: {e}\n{text}", info.name)
        });
        cfg.insert(info.id, device);
    }
    let spec = spec_for(topo);
    GeneratedNetwork {
        topo: topo.clone(),
        cfg,
        spec,
    }
}

/// Configuration-only generation for scale-frontier workloads (100k
/// synthetic prefixes): every router runs its own AS (`65000 + id`, no
/// shared customer AS), originates its attachments with `network`
/// statements, and peers plainly with every neighbor — no `Override_Cust`
/// policy and no `cust_space` prefix list, both of which enumerate
/// adjacent customer prefixes and are infeasible to parse and evaluate at
/// 100k prefixes per spine. No [`Spec`] either: [`spec_for`] is quadratic
/// in attachments, and scale experiments drive the simulator directly.
pub fn generate_plain_cfg(topo: &Topology) -> NetworkConfig {
    let mut cfg = NetworkConfig::new();
    for info in topo.routers() {
        let mut out = String::new();
        let _ = writeln!(out, "bgp {}", BACKBONE_AS_BASE + info.id.0);
        let _ = writeln!(out, " router-id {}", info.loopback);
        for p in &info.attached {
            let _ = writeln!(out, " network {} {}", p.addr(), p.len());
        }
        for (neighbor, link) in topo.neighbors(info.id) {
            let peer_addr = link
                .peer_of(info.id)
                .expect("neighbor implies endpoint")
                .addr;
            let _ = writeln!(
                out,
                " peer {} as-number {}",
                peer_addr,
                BACKBONE_AS_BASE + neighbor.0
            );
        }
        append_interfaces(topo, info.id, &mut out);
        let device = parse_device(info.name.clone(), &out)
            .unwrap_or_else(|e| panic!("plain config for {} must parse: {e}\n{out}", info.name));
        cfg.insert(info.id, device);
    }
    cfg
}

/// Customer routers: originate attachments, peer with each neighbor.
fn customer_config(topo: &Topology, id: RouterId) -> String {
    let info = topo.router(id);
    let mut out = String::new();
    let _ = writeln!(out, "bgp {}", CUSTOMER_AS);
    let _ = writeln!(out, " router-id {}", info.loopback);
    for p in &info.attached {
        let _ = writeln!(out, " network {} {}", p.addr(), p.len());
    }
    for (neighbor, link) in topo.neighbors(id) {
        let peer_addr = link.peer_of(id).expect("neighbor implies endpoint").addr;
        let _ = writeln!(
            out,
            " peer {} as-number {}",
            peer_addr,
            asn_of(topo, neighbor).0
        );
    }
    append_interfaces(topo, id, &mut out);
    out
}

/// Backbone routers: transit peers, customer group + override policy,
/// origination mix, optional PBR guard.
fn backbone_config(topo: &Topology, id: RouterId) -> String {
    let info = topo.router(id);
    let mut out = String::new();
    let _ = writeln!(out, "bgp {}", asn_of(topo, id).0);
    let _ = writeln!(out, " router-id {}", info.loopback);

    // Origination of this router's own attachments: even ids use network
    // statements; odd ids use a NULL0 static plus redistribution (the
    // "missing redistribution" fault surface).
    let via_static = id.0 % 2 == 1;
    if !via_static {
        for p in &info.attached {
            let _ = writeln!(out, " network {} {}", p.addr(), p.len());
        }
    } else if !info.attached.is_empty() {
        let _ = writeln!(out, " import-route static");
    }

    let mut customers: Vec<(RouterId, acr_net_types::Ipv4Addr)> = Vec::new();
    for (neighbor, link) in topo.neighbors(id) {
        let peer_addr = link.peer_of(id).expect("neighbor implies endpoint").addr;
        if is_customer(topo.router(neighbor).role) {
            customers.push((neighbor, peer_addr));
        } else {
            let _ = writeln!(
                out,
                " peer {} as-number {}",
                peer_addr,
                asn_of(topo, neighbor).0
            );
        }
    }
    customers.sort_by_key(|(n, _)| *n);
    if customers.len() >= 2 {
        // Shared settings live in the Cust peer group.
        let _ = writeln!(out, " group Cust external");
        let _ = writeln!(out, " peer Cust as-number {}", CUSTOMER_AS);
        let _ = writeln!(out, " peer Cust route-policy Override_Cust import");
        for (_, addr) in &customers {
            let _ = writeln!(out, " peer {addr} group Cust");
        }
    } else {
        for (_, addr) in &customers {
            let _ = writeln!(out, " peer {addr} as-number {}", CUSTOMER_AS);
            let _ = writeln!(out, " peer {addr} route-policy Override_Cust import");
        }
    }

    // The override-and-filter ingress policy for customer sessions.
    if !customers.is_empty() {
        let _ = writeln!(out, "route-policy Override_Cust permit node 10");
        let _ = writeln!(out, " if-match ip-prefix cust_space");
        let _ = writeln!(out, " apply as-path overwrite");
        let mut index = 10;
        for (neighbor, _) in &customers {
            for p in &topo.router(*neighbor).attached {
                let _ = writeln!(
                    out,
                    "ip prefix-list cust_space index {index} permit {} {}",
                    p.addr(),
                    p.len()
                );
                index += 10;
            }
        }
    }

    if via_static {
        for p in &info.attached {
            let _ = writeln!(out, "ip route-static {} {} NULL0", p.addr(), p.len());
        }
    }

    // PBR guard on every fourth backbone router: permit the legitimate
    // address space, drop the rest.
    if id.0 % 4 == 1 {
        let _ = writeln!(out, "acl 3800");
        let _ = writeln!(
            out,
            " rule 5 permit ip source 0.0.0.0 0 destination 10.0.0.0 8"
        );
        let _ = writeln!(
            out,
            " rule 6 permit ip source 0.0.0.0 0 destination 20.0.0.0 8"
        );
        let _ = writeln!(out, "acl 3801");
        let _ = writeln!(
            out,
            " rule 5 permit ip source 0.0.0.0 0 destination 0.0.0.0 0"
        );
        let _ = writeln!(out, "traffic-policy guard");
        let _ = writeln!(out, " match acl 3800 permit");
        let _ = writeln!(out, " match acl 3801 deny");
        let _ = writeln!(out, "apply traffic-policy guard");
    }

    append_interfaces(topo, id, &mut out);
    out
}

/// Interface blocks for every link endpoint (coverage surface; also lets
/// FIB provenance attribute connected routes).
fn append_interfaces(topo: &Topology, id: RouterId, out: &mut String) {
    for link in topo.links_of(id) {
        let ep = link
            .endpoint_of(id)
            .expect("links_of yields incident links");
        let _ = writeln!(out, "interface {}", ep.iface);
        let _ = writeln!(out, " ip address {} {}", ep.addr, link.subnet.len());
    }
}

/// Reachability spec: each attachment must be reachable from two
/// deterministic remote routers (the "farthest" other attachment owner
/// and a rotating second start).
fn spec_for(topo: &Topology) -> Spec {
    let attachments: Vec<(RouterId, Prefix)> = topo.attachments().collect();
    let mut spec = Spec::new();
    for (i, (owner, prefix)) in attachments.iter().enumerate() {
        let mut starts: Vec<RouterId> = Vec::new();
        // Farthest-id other owner: a crude but deterministic "far corner".
        if let Some((far, _)) = attachments
            .iter()
            .filter(|(o, _)| o != owner)
            .max_by_key(|(o, _)| o.0.abs_diff(owner.0))
        {
            starts.push(*far);
        }
        // A rotating second start among the other owners.
        let others: Vec<RouterId> = attachments
            .iter()
            .map(|(o, _)| *o)
            .filter(|o| o != owner)
            .collect();
        if !others.is_empty() {
            let second = others[i % others.len()];
            if !starts.contains(&second) {
                starts.push(second);
            }
        }
        if starts.is_empty() {
            // Single-attachment networks: verify from the owner itself.
            starts.push(*owner);
        }
        for start in starts {
            let src = attachments
                .iter()
                .find(|(o, _)| *o == start)
                .map(|(_, p)| *p)
                .unwrap_or(Prefix::DEFAULT);
            spec = spec.with(Property::reach(
                format!("reach-{prefix}-from-{}", topo.router(start).name),
                start,
                src,
                *prefix,
            ));
        }
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_topo::gen;
    use acr_verify::Verifier;

    #[test]
    fn generated_mesh_is_healthy() {
        let topo = gen::full_mesh(6);
        let net = generate(&topo);
        let verifier = Verifier::new(&net.topo, &net.spec);
        let (v, _) = verifier.run_full(&net.cfg);
        assert!(
            v.all_passed(),
            "{:?}",
            v.failures()
                .map(|r| (&r.property, &r.violation))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn generated_leaf_spine_is_healthy() {
        let topo = gen::leaf_spine(2, 6);
        let net = generate(&topo);
        let verifier = Verifier::new(&net.topo, &net.spec);
        let (v, _) = verifier.run_full(&net.cfg);
        assert!(
            v.all_passed(),
            "{:?}",
            v.failures()
                .map(|r| (&r.property, &r.violation))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn generated_ring_is_healthy() {
        let topo = gen::ring(8);
        let net = generate(&topo);
        let verifier = Verifier::new(&net.topo, &net.spec);
        let (v, _) = verifier.run_full(&net.cfg);
        assert!(
            v.all_passed(),
            "{:?}",
            v.failures()
                .map(|r| (&r.property, &r.violation))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn leaf_spine_uses_peer_groups_and_overrides() {
        let topo = gen::leaf_spine(2, 4);
        let net = generate(&topo);
        let spine = topo.by_name("S0").unwrap();
        let text = net.cfg.device(spine).unwrap().to_text();
        assert!(text.contains("group Cust external"), "{text}");
        assert!(
            text.contains("peer Cust route-policy Override_Cust import"),
            "{text}"
        );
        assert!(text.contains("apply as-path overwrite"), "{text}");
        // The cust_space list enumerates every leaf prefix.
        assert!(text.contains("ip prefix-list cust_space"), "{text}");
    }

    #[test]
    fn spec_covers_every_attachment() {
        let topo = gen::full_mesh(5);
        let net = generate(&topo);
        for (_, prefix) in topo.attachments() {
            assert!(
                net.spec.properties.iter().any(|p| p.hs.dst == prefix),
                "no property for {prefix}"
            );
        }
    }

    #[test]
    fn plain_cfg_converges_everywhere() {
        use acr_sim::{PrefixOutcome, Simulator};
        let topo = gen::leaf_spine_multi(2, 3, 5);
        let cfg = generate_plain_cfg(&topo);
        let sim = Simulator::new(&topo, &cfg);
        let out = sim.run();
        assert_eq!(out.outcomes.len(), 15);
        for (p, o) in &out.outcomes {
            let PrefixOutcome::Converged { best, .. } = o else {
                panic!("{p} did not converge");
            };
            // Plain distinct-AS eBGP: every router holds a best route.
            assert!(best.iter().all(|b| b.is_some()), "{p} has holes");
        }
    }

    #[test]
    fn odd_routers_use_static_redistribution() {
        let topo = gen::full_mesh(4);
        let net = generate(&topo);
        let odd = net.cfg.device(RouterId(1)).unwrap().to_text();
        assert!(odd.contains("import-route static"), "{odd}");
        assert!(odd.contains("ip route-static"), "{odd}");
        let even = net.cfg.device(RouterId(0)).unwrap().to_text();
        assert!(even.contains("network"), "{even}");
    }
}
