//! # acr-workloads
//!
//! Workload generation for the ACR experiments:
//!
//! - [`fig2`] — the paper's Figure 2 example incident, built exactly:
//!   four backbone routers (A, B, C, S), two PoPs and a DCN, `as-path
//!   overwrite` policies whose `default_all` prefix lists are
//!   misconfigured to `0.0.0.0 0` on A and C, and the new C–S session
//!   that sets off route flapping for `10.0/16`.
//! - [`netgen`] — role-structured configuration generation for arbitrary
//!   topologies: shared customer AS at the edge (which makes the
//!   backbone's `as-path overwrite` ingress policies *load-bearing*, as in
//!   the paper's network), peer groups for multi-customer backbones,
//!   static-vs-network origination mix, PBR guard policies, and a
//!   reachability specification.
//! - [`inject`] — the incident injector: plants each of the paper's nine
//!   Table-1 misconfiguration classes into a generated network, with a
//!   sampler that reproduces the reported ratios.
//!
//! Everything is deterministic given a seed.

pub mod fig2;
pub mod inject;
pub mod netgen;

pub use fig2::{fig2_incident, Fig2};
pub use inject::{
    inject_at, sample_incidents, try_inject, try_inject_into, FaultType, Incident, TABLE1,
};
pub use netgen::{generate, GeneratedNetwork, CUSTOMER_AS};
