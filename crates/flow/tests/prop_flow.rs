//! Property tests for the two claims `acr-flow` stakes:
//!
//! 1. **Over-approximation.** Every route concrete simulation ever
//!    materializes — converged bests and routes observed inside a
//!    flapping cycle alike — is covered by an abstract may-fact:
//!    `may_have(router, prefix)` exists and its intervals/may-sets
//!    contain the concrete attributes. Fuzzed over topology families ×
//!    Table-1 fault injections.
//! 2. **Gate exactness.** Whenever [`patch_invisible`] proves a patch
//!    invisible to the spec's destination cones, a *full* simulation of
//!    the patched network produces the same verification the base got:
//!    record-for-record verdicts, violations, walk paths, and the same
//!    coverage matrix. This is the property that lets the repair engine
//!    serve gate-skipped candidates from the base verification with
//!    byte-identical reports.

// Gated: run with `cargo test --features heavy-tests` (vendored proptest shim).
#![cfg(feature = "heavy-tests")]

use acr_cfg::{Edit, NetworkConfig, Patch, PlAction, Stmt};
use acr_flow::{analyze, patch_invisible};
use acr_net_types::{Prefix, RouterId};
use acr_sim::{PrefixOutcome, Simulator};
use acr_topo::gen;
use acr_verify::{Verification, Verifier};
use acr_workloads::{generate, try_inject, GeneratedNetwork, TABLE1};
use proptest::prelude::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig};

/// A Table-1 incident on a fuzz-chosen topology (the healthy network
/// when the chosen fault has no injection site on it).
fn incident(shape: u8, a: u8, b: u8, fi: usize, seed: u64) -> (GeneratedNetwork, NetworkConfig) {
    let topo = match shape % 4 {
        0 => gen::wan(2 + (a % 2) as usize, 4 + (b % 4) as usize),
        1 => gen::ring(4 + (a % 4) as usize),
        2 => gen::leaf_spine(2, 4 + (b % 3) as usize),
        _ => gen::full_mesh(4 + (a % 3) as usize),
    };
    let net = generate(&topo);
    let (fault, _) = TABLE1[fi % TABLE1.len()];
    let cfg = match try_inject(fault, &net, seed) {
        Some(inc) => inc.broken,
        None => net.cfg.clone(),
    };
    (net, cfg)
}

/// The parts of a verification full simulation must reproduce for a
/// gate-served candidate: everything except `deriv_roots` (arena-relative
/// provenance handles; the engine keeps the base's, which resolve in the
/// persistent arena) and `flapping`/`session_diags` bookkeeping the
/// repair loop never reads per-candidate. The coverage matrix is
/// compared separately (it drives localization, so it must match too).
#[allow(clippy::type_complexity)]
fn semantic_records(
    v: &Verification,
) -> Vec<(String, bool, &Option<acr_verify::Violation>, &Vec<RouterId>)> {
    v.records
        .iter()
        .map(|r| (r.property.clone(), r.passed, &r.violation, &r.path))
        .collect()
}

/// Builds one fuzzed candidate patch of the families the repair engine
/// actually emits (in-class replacements, identity edits, cancelling
/// insert/delete pairs). `None` when the chosen family has no site in
/// `cfg`.
fn fuzz_patch(cfg: &NetworkConfig, kind: u8, ri: usize, si: usize, oct: u8) -> Option<Patch> {
    let routers = cfg.routers();
    let router = *routers.get(ri % routers.len())?;
    let dev = cfg.device(router)?;
    let stmts = dev.stmts();
    // Pick the si-th statement matching the family's shape.
    let pick = |f: &dyn Fn(&Stmt) -> bool| -> Option<(usize, Stmt)> {
        let sites: Vec<usize> = (0..stmts.len()).filter(|&i| f(&stmts[i])).collect();
        let &i = sites.get(si % sites.len().max(1))?;
        Some((i, stmts[i].clone()))
    };
    let prefix = Prefix::from_octets(10, oct, 0, 0, 16);
    match kind % 7 {
        0 => {
            let (i, _) = pick(&|s| matches!(s, Stmt::Remark(_)))?;
            Some(Patch::single(Edit::Replace {
                router,
                index: i,
                stmt: Stmt::Remark(format!("fuzz {oct}")),
            }))
        }
        1 => {
            let (i, s) = pick(&|s| matches!(s, Stmt::PrefixListEntry { .. }))?;
            let Stmt::PrefixListEntry { list, index, .. } = s else {
                unreachable!()
            };
            Some(Patch::single(Edit::Replace {
                router,
                index: i,
                stmt: Stmt::PrefixListEntry {
                    list,
                    index,
                    action: if oct.is_multiple_of(2) {
                        PlAction::Permit
                    } else {
                        PlAction::Deny
                    },
                    prefix,
                    ge: None,
                    le: None,
                },
            }))
        }
        2 => {
            let (i, s) = pick(&|s| matches!(s, Stmt::StaticRoute { .. }))?;
            let Stmt::StaticRoute { next_hop, .. } = s else {
                unreachable!()
            };
            Some(Patch::single(Edit::Replace {
                router,
                index: i,
                stmt: Stmt::StaticRoute { prefix, next_hop },
            }))
        }
        3 => {
            let (i, _) = pick(&|s| matches!(s, Stmt::Network(_)))?;
            Some(Patch::single(Edit::Replace {
                router,
                index: i,
                stmt: Stmt::Network(prefix),
            }))
        }
        4 => {
            let (i, _) = pick(&|s| matches!(s, Stmt::ApplyLocalPref(_)))?;
            Some(Patch::single(Edit::Replace {
                router,
                index: i,
                stmt: Stmt::ApplyLocalPref(50 + oct as u32),
            }))
        }
        5 => {
            // Identity: replace any statement with itself.
            let (i, s) = pick(&|_| true)?;
            Some(Patch::single(Edit::Replace {
                router,
                index: i,
                stmt: s,
            }))
        }
        _ => {
            // A cancelling insert/delete pair (crossover splice shape).
            let at = si % (stmts.len() + 1);
            let mut patch = Patch::single(Edit::Insert {
                router,
                index: at,
                stmt: Stmt::Remark("spliced".into()),
            });
            patch.edits.push(Edit::Delete { router, index: at });
            Some(patch)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Claim 1: the abstract may-propagation relation covers every
    /// concrete route, across topology families and Table-1 faults.
    #[test]
    fn abstract_facts_cover_concrete_reachability(
        shape in any::<u8>(), a in any::<u8>(), b in any::<u8>(),
        fi in any::<usize>(), seed in any::<u64>(),
    ) {
        let (net, cfg) = incident(shape, a, b, fi, seed);
        let facts = analyze(&net.topo, &cfg);
        let out = Simulator::new(&net.topo, &cfg).run();
        for (prefix, outcome) in &out.outcomes {
            // Converged bests and flapping-cycle observations are both
            // concrete reachability witnesses.
            let held: Vec<(RouterId, &acr_sim::Route)> = match outcome {
                PrefixOutcome::Converged { best, .. } => best
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.as_ref().map(|r| (RouterId(i as u32), r)))
                    .collect(),
                PrefixOutcome::Flapping { observed, .. } => observed
                    .iter()
                    .enumerate()
                    .flat_map(|(i, rs)| rs.iter().map(move |r| (RouterId(i as u32), r)))
                    .collect(),
            };
            for (router, route) in held {
                let fact = facts.may_have(router, *prefix);
                prop_assert!(
                    fact.is_some(),
                    "concrete route for {prefix} at {router} has no abstract fact"
                );
                prop_assert!(
                    fact.unwrap().covers(route),
                    "abstract fact {:?} does not cover concrete {:?} at {router}",
                    fact.unwrap(),
                    route
                );
            }
        }
    }

    /// Claim 2: a gate-proved-invisible patch full-simulates to the base
    /// verification (modulo provenance handles), so serving the base is
    /// exact.
    #[test]
    fn gate_served_candidates_match_full_simulation(
        fi in any::<usize>(), seed in any::<u64>(),
        kind in any::<u8>(), ri in any::<usize>(), si in any::<usize>(), oct in any::<u8>(),
    ) {
        let net = generate(&gen::wan(3, 4));
        let (fault, _) = TABLE1[fi % TABLE1.len()];
        let broken = match try_inject(fault, &net, seed) {
            Some(inc) => inc.broken,
            None => net.cfg.clone(),
        };
        let Some(patch) = fuzz_patch(&broken, kind, ri, si, oct) else { return };
        let protected: Vec<Prefix> = net.spec.properties.iter().map(|p| p.hs.dst).collect();
        if !patch_invisible(&broken, &patch, &protected) {
            return; // nothing proven, nothing to check
        }
        let Ok(patched) = patch.apply_cloned(&broken) else {
            // The gate replays the patch itself, so a proved patch is
            // applicable by construction.
            prop_assert!(false, "gate proved an inapplicable patch");
            return;
        };
        let verifier = Verifier::new(&net.topo, &net.spec);
        let (v_base, _) = verifier.run_full(&broken);
        let (v_cand, _) = verifier.run_full(&patched);
        prop_assert_eq!(semantic_records(&v_base), semantic_records(&v_cand));
        prop_assert_eq!(&v_base.matrix, &v_cand.matrix);
    }
}

/// The exactness property must not hold vacuously. On a *healthy*
/// generated network every statement sits inside some protected cone,
/// so cone-based proofs need the spare/dead configuration real networks
/// accumulate: salt one router with a remark, an unreferenced prefix
/// list and a detached route-policy, then sweep the fuzz families. The
/// gate must prove a healthy number of patches — including ones that
/// change the rendered configuration (cone reasoning, not just the
/// identity fast path) — and each proof must full-simulate to the base
/// verification.
#[test]
fn gate_fires_on_the_fuzzed_families() {
    let net = generate(&gen::wan(3, 4));
    let mut cfg = net.cfg.clone();
    let r0 = cfg.routers()[0];
    let dev = cfg.device(r0).unwrap();
    let salted_text = format!(
        "{}description spare capacity\n\
         ip prefix-list UNUSED index 10 permit 10.201.0.0 16\n\
         route-policy DEAD permit node 10\n\
         apply local-preference 50\n",
        dev.to_text()
    );
    let name = dev.name().to_string();
    cfg.insert(
        r0,
        acr_cfg::parse::parse_device(&name, &salted_text).expect("salted config parses"),
    );

    let protected: Vec<Prefix> = net.spec.properties.iter().map(|p| p.hs.dst).collect();
    let verifier = Verifier::new(&net.topo, &net.spec);
    let (v_base, _) = verifier.run_full(&cfg);
    let (mut proved, mut proved_changing) = (0usize, 0usize);
    for kind in 0..7u8 {
        for ri in 0..6usize {
            for si in 0..4usize {
                for oct in [3u8, 77, 201] {
                    let Some(patch) = fuzz_patch(&cfg, kind, ri, si, oct) else {
                        continue;
                    };
                    if !patch_invisible(&cfg, &patch, &protected) {
                        continue;
                    }
                    proved += 1;
                    let patched = patch.apply_cloned(&cfg).expect("proved patches apply");
                    if patched != cfg {
                        proved_changing += 1;
                    }
                    let (v_cand, _) = verifier.run_full(&patched);
                    assert_eq!(
                        semantic_records(&v_base),
                        semantic_records(&v_cand),
                        "gate-proved patch changed a verdict: {patch}"
                    );
                    assert_eq!(v_base.matrix, v_cand.matrix, "coverage drifted: {patch}");
                }
            }
        }
    }
    assert!(proved >= 10, "only {proved} patches proved invisible");
    assert!(
        proved_changing > 0,
        "every proved patch was the identity — the cone analysis never fired"
    );
}
