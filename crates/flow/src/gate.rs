//! The static candidate-pruning gate: patch invisibility.
//!
//! `acr-core::validate` may *serve* a candidate's verification from the
//! base configuration's — skipping its simulation entirely — when the
//! candidate's patch is **invisible**: provably observationally
//! equivalent to the unpatched network for every specification test.
//! Because the served verification is the exact value full simulation
//! would compute, the engine's trajectory (and hence the final report)
//! is byte-identical with the gate on or off.
//!
//! Two proofs are attempted. The *identity* fast path applies the whole
//! patch and checks the result is structurally the base configuration —
//! crossover routinely splices an insert with the delete that undoes it.
//! Failing that, the proof obligation is discharged edit by edit,
//! replaying the patch on a working copy so each judgment sees the
//! document state the edit actually applies to (an earlier edit may,
//! say, retarget an `if-match ip-prefix` clause and thereby change
//! which lists are referenced). An edit is invisible when
//!
//! 1. it is a [`Edit::Replace`] — inserts and deletes shift every later
//!    line number, which would perturb the coverage matrix and the
//!    derivation provenance even if routing were unchanged;
//! 2. old and new statements fall in the same *replacement class*:
//!    either both are prefix-coned top-level facts (`description`,
//!    `network`, `ip route-static`, `ip prefix-list` entries) or both
//!    are route-policy internals (`if-match` / `apply`). Mixing the
//!    classes can restructure a policy node (e.g. a clause swapped for
//!    a remark widens the node's match set), which the per-kind cones
//!    do not bound;
//! 3. the *influence cone* of the old statement (in the pre-edit
//!    document) and of the new statement (in the post-edit document) is
//!    disjoint from every protected prefix — each specification
//!    property's destination header space.
//!
//! Cones: a remark influences nothing; `network p` / `ip route-static
//! p` influence only routing for destinations under `p` (origination
//! and FIB entries are per-prefix); a prefix-list entry influences
//! routes under its own prefix, and nothing at all when no applied
//! route-policy references the list; a policy-internal statement
//! influences the routes its containing node may match — bounded by the
//! entries of the node's `if-match ip-prefix` clause (empty or
//! undefined list ⇒ the node matches nothing; no prefix clause ⇒
//! unbounded), or nothing when no `peer … route-policy` statement
//! references the containing policy. Two prefixes are comparable iff
//! they overlap, and a route can only influence a test whose
//! destination its prefix contains, so "no cone prefix overlaps a
//! protected prefix" implies no test-visible route ever changes.

use acr_cfg::{DeviceConfig, Edit, NetworkConfig, Patch, Stmt};
use acr_net_types::Prefix;
use std::collections::BTreeSet;

/// The influence cone of one side of a replacement.
#[derive(Debug, Clone)]
enum Cone {
    /// Unbounded: the statement may influence any destination.
    Any,
    /// Bounded: only destinations under one of these prefixes (empty ⇒
    /// provably inert).
    Prefixes(Vec<Prefix>),
}

impl Cone {
    fn disjoint_from(&self, protected: &[Prefix]) -> bool {
        match self {
            Cone::Any => false,
            Cone::Prefixes(ps) => ps.iter().all(|p| protected.iter().all(|q| !p.overlaps(*q))),
        }
    }
}

/// Whether `patch`, applied to `original`, is provably invisible to
/// every test whose destination lies under one of `protected`.
///
/// Conservative: `false` means "could not prove it", never "visible".
pub fn patch_invisible(original: &NetworkConfig, patch: &Patch, protected: &[Prefix]) -> bool {
    if patch.edits.is_empty() {
        return false; // the base itself — nothing to skip
    }
    // Identity fast path: a patch whose edits cancel out textually (e.g.
    // an insert/delete pair spliced together by crossover) produces the
    // base configuration itself — invisible regardless of edit kinds or
    // cones. Structural equality, not a fingerprint, so this stays a
    // proof.
    let mut scratch = original.clone();
    if patch.apply(&mut scratch).is_ok() && scratch == *original {
        return true;
    }
    let mut work = original.clone();
    for edit in &patch.edits {
        let Edit::Replace {
            router,
            index,
            stmt: new_stmt,
        } = edit
        else {
            return false;
        };
        let Some(dev) = work.device(*router) else {
            return false;
        };
        let Some(old_stmt) = dev.stmts().get(*index).cloned() else {
            return false;
        };
        if !same_class(&old_stmt, new_stmt) {
            return false;
        }
        let old_cone = stmt_cone(dev, *index, &old_stmt);
        if !old_cone.disjoint_from(protected) {
            return false;
        }
        if Patch::single(edit.clone()).apply(&mut work).is_err() {
            return false;
        }
        let dev = work
            .device(*router)
            .expect("device survived the replacement");
        let new_cone = stmt_cone(dev, *index, new_stmt);
        if !new_cone.disjoint_from(protected) {
            return false;
        }
    }
    true
}

/// Replacement-class compatibility (condition 2 of the module docs).
fn same_class(old: &Stmt, new: &Stmt) -> bool {
    (coned_top_level(old) && coned_top_level(new)) || (policy_internal(old) && policy_internal(new))
}

fn coned_top_level(s: &Stmt) -> bool {
    matches!(
        s,
        Stmt::Remark(_)
            | Stmt::Network(_)
            | Stmt::StaticRoute { .. }
            | Stmt::PrefixListEntry { .. }
    )
}

fn policy_internal(s: &Stmt) -> bool {
    matches!(
        s,
        Stmt::IfMatchPrefixList(_)
            | Stmt::IfMatchCommunity(_)
            | Stmt::ApplyAsPathOverwrite(_)
            | Stmt::ApplyAsPathPrepend { .. }
            | Stmt::ApplyLocalPref(_)
            | Stmt::ApplyMed(_)
            | Stmt::ApplyCommunity(_)
    )
}

/// The influence cone of the statement at `index` of `dev` (which must
/// be `dev.stmts()[index]`), judged against `dev`'s current text.
fn stmt_cone(dev: &DeviceConfig, index: usize, stmt: &Stmt) -> Cone {
    match stmt {
        Stmt::Remark(_) => Cone::Prefixes(Vec::new()),
        Stmt::Network(p) => Cone::Prefixes(vec![*p]),
        Stmt::StaticRoute { prefix, .. } => Cone::Prefixes(vec![*prefix]),
        Stmt::PrefixListEntry { list, prefix, .. } => {
            if referenced_lists(dev).contains(list.as_str()) {
                Cone::Prefixes(vec![*prefix])
            } else {
                Cone::Prefixes(Vec::new())
            }
        }
        s if policy_internal(s) => node_cone(dev, index),
        _ => Cone::Any,
    }
}

/// Policies attached to a peer or group by a `peer … route-policy`
/// statement anywhere in the device.
fn referenced_policies(dev: &DeviceConfig) -> BTreeSet<&str> {
    dev.stmts()
        .iter()
        .filter_map(|s| match s {
            Stmt::PeerPolicy { policy, .. } => Some(policy.as_str()),
            _ => None,
        })
        .collect()
}

/// Prefix lists named by an `if-match ip-prefix` clause of a referenced
/// policy. Lists only read from unreferenced policies are as dead as
/// the policies themselves.
fn referenced_lists(dev: &DeviceConfig) -> BTreeSet<&str> {
    let policies = referenced_policies(dev);
    let mut lists = BTreeSet::new();
    let mut live_block = false;
    for s in dev.stmts() {
        match s {
            Stmt::RoutePolicyDef { name, .. } => live_block = policies.contains(name.as_str()),
            s if s.is_header() => live_block = false,
            Stmt::IfMatchPrefixList(list) if live_block => {
                lists.insert(list.as_str());
            }
            _ => {}
        }
    }
    lists
}

/// The cone of a policy-internal statement: what its containing node
/// may match.
fn node_cone(dev: &DeviceConfig, index: usize) -> Cone {
    let stmts = dev.stmts();
    // Walk back to the containing `route-policy … node` header.
    let mut header = None;
    for i in (0..index).rev() {
        match &stmts[i] {
            Stmt::RoutePolicyDef { name, .. } => {
                header = Some((i, name.as_str()));
                break;
            }
            s if policy_internal(s) => continue,
            _ => return Cone::Any, // malformed context — don't reason
        }
    }
    let Some((header_idx, policy)) = header else {
        return Cone::Any;
    };
    if !referenced_policies(dev).contains(policy) {
        return Cone::Prefixes(Vec::new()); // dead policy: never evaluated
    }
    // Collect the node's `if-match ip-prefix` clauses (everything up to
    // the next non-internal statement belongs to this node).
    let mut tightest: Option<Vec<Prefix>> = None;
    for s in &stmts[header_idx + 1..] {
        match s {
            Stmt::IfMatchPrefixList(list) => {
                let entries = list_entry_prefixes(dev, list);
                if tightest.as_ref().is_none_or(|t| entries.len() < t.len()) {
                    tightest = Some(entries);
                }
            }
            s if policy_internal(s) => continue,
            _ => break,
        }
    }
    match tightest {
        // An unsatisfiable clause (empty or undefined list) makes the
        // node unmatched; otherwise any one clause bounds the match set
        // since clauses conjoin.
        Some(entries) => Cone::Prefixes(entries),
        None => Cone::Any, // no prefix clause: the node may match anything
    }
}

/// Every entry prefix of `list` in `dev` (empty for undefined lists).
fn list_entry_prefixes(dev: &DeviceConfig, list: &str) -> Vec<Prefix> {
    dev.stmts()
        .iter()
        .filter_map(|s| match s {
            Stmt::PrefixListEntry {
                list: l, prefix, ..
            } if l == list => Some(*prefix),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_cfg::parse::parse_device;
    use acr_net_types::RouterId;

    fn net(text: &str) -> NetworkConfig {
        let mut net = NetworkConfig::default();
        net.insert(RouterId(0), parse_device("R0", text).unwrap());
        net
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    const BASE: &str = "bgp 65001\n\
         peer 10.9.0.2 as-number 65002\n\
         peer 10.9.0.2 route-policy IMP import\n\
         network 10.1.0.0 16\n\
         route-policy IMP permit node 10\n\
         if-match ip-prefix SCOPE\n\
         apply local-preference 200\n\
         route-policy DEAD permit node 10\n\
         apply local-preference 50\n\
         ip prefix-list SCOPE index 10 permit 10.1.0.0 16\n\
         ip prefix-list UNUSED index 10 permit 10.2.0.0 16\n\
         description spare\n";

    /// Parses one statement line, giving it the block context it needs
    /// (policy internals are written with a leading space).
    fn stmt(line: &str) -> Stmt {
        let text = if line.starts_with(' ') {
            format!("bgp 65001\nroute-policy X permit node 10\n{line}\n")
        } else if line.starts_with("network") {
            format!("bgp 65001\n{line}\n")
        } else {
            format!("{line}\n")
        };
        parse_device("T", &text)
            .unwrap()
            .stmts()
            .last()
            .unwrap()
            .clone()
    }

    fn replace(index: usize, line: &str) -> Patch {
        Patch::single(Edit::Replace {
            router: RouterId(0),
            index,
            stmt: stmt(line),
        })
    }

    #[test]
    fn remark_and_disjoint_network_edits_are_invisible() {
        let net = net(BASE);
        let protected = [p("10.1.0.0/16")];
        // description → description: inert.
        assert!(patch_invisible(
            &net,
            &replace(11, "description x"),
            &protected
        ));
        // network 10.1/16 → network 10.8/16: both cones avoid 10.1/16?
        // The old side *is* 10.1/16 — visible.
        assert!(!patch_invisible(
            &net,
            &replace(3, "network 10.8.0.0 16"),
            &protected
        ));
        // But with a protected cone elsewhere, the same edit is invisible.
        assert!(patch_invisible(
            &net,
            &replace(3, "network 10.8.0.0 16"),
            &[p("10.7.0.0/16")]
        ));
    }

    #[test]
    fn referenced_list_entries_use_their_prefix_cone() {
        let net = net(BASE);
        // SCOPE is referenced: its 10.1/16 entry overlaps the cone.
        assert!(!patch_invisible(
            &net,
            &replace(9, "ip prefix-list SCOPE index 10 permit 10.5.0.0 16"),
            &[p("10.1.0.0/16")],
        ));
        // UNUSED is read by no applied policy: entry edits are inert.
        assert!(patch_invisible(
            &net,
            &replace(10, "ip prefix-list UNUSED index 10 permit 10.1.0.0 16"),
            &[p("10.1.0.0/16")],
        ));
    }

    #[test]
    fn policy_internals_are_bounded_by_the_node_guard() {
        let net = net(BASE);
        // IMP node 10 is guarded by SCOPE = {10.1/16}: an apply edit is
        // visible to 10.1/16 but invisible to 10.7/16.
        assert!(!patch_invisible(
            &net,
            &replace(6, " apply local-preference 300"),
            &[p("10.1.0.0/16")]
        ));
        assert!(patch_invisible(
            &net,
            &replace(6, " apply local-preference 300"),
            &[p("10.7.0.0/16")]
        ));
        // DEAD is attached to no peer: its internals are inert even for
        // the protected prefix (it has no prefix clause at all).
        assert!(patch_invisible(
            &net,
            &replace(8, " apply local-preference 999"),
            &[p("10.1.0.0/16")]
        ));
    }

    #[test]
    fn non_replace_and_cross_class_edits_are_never_skipped() {
        let net = net(BASE);
        let far = [p("10.7.0.0/16")];
        assert!(!patch_invisible(
            &net,
            &Patch::single(Edit::Insert {
                router: RouterId(0),
                index: 12,
                stmt: stmt("description x"),
            }),
            &far,
        ));
        assert!(!patch_invisible(
            &net,
            &Patch::single(Edit::Delete {
                router: RouterId(0),
                index: 11,
            }),
            &far,
        ));
        // apply ↔ description crosses the class boundary.
        assert!(!patch_invisible(&net, &replace(8, "description x"), &far));
    }

    #[test]
    fn cancelling_edit_pairs_hit_the_identity_fast_path() {
        let net = net(BASE);
        let hot = [p("10.1.0.0/16")];
        // Insert + delete of the inserted line: textually the base again,
        // invisible even though neither edit is a Replace and the
        // statement's cone covers the protected prefix.
        let mut patch = Patch::single(Edit::Insert {
            router: RouterId(0),
            index: 3,
            stmt: stmt("network 10.1.0.0 16"),
        });
        patch.edits.push(Edit::Delete {
            router: RouterId(0),
            index: 3,
        });
        assert!(patch_invisible(&net, &patch, &hot));
        // Replacing a statement with itself is likewise the identity.
        assert!(patch_invisible(
            &net,
            &replace(3, "network 10.1.0.0 16"),
            &hot
        ));
        // The lone insert is not.
        assert!(!patch_invisible(
            &net,
            &Patch::single(Edit::Insert {
                router: RouterId(0),
                index: 3,
                stmt: stmt("network 10.1.0.0 16"),
            }),
            &hot,
        ));
    }

    #[test]
    fn replay_sees_reference_changes_made_by_earlier_edits() {
        let net = net(BASE);
        let far = [p("10.7.0.0/16")];
        // First edit retargets IMP's clause onto UNUSED; judging the
        // second edit (an UNUSED entry swap) against the *original*
        // references would wrongly call it inert. 10.2/16 (old entry)
        // must now count as visible when protected.
        let mut patch = replace(5, " if-match ip-prefix UNUSED");
        patch
            .edits
            .extend(replace(10, "ip prefix-list UNUSED index 10 permit 10.3.0.0 16").edits);
        assert!(patch_invisible(&net, &patch, &far));
        assert!(!patch_invisible(&net, &patch, &[p("10.2.0.0/16")]));
    }
}
