//! `acr-flow`: network-wide route-propagation dataflow analysis.
//!
//! A static abstract interpretation over the network's policy graph.
//! Where `acr-sim` *simulates* BGP to a concrete fixed point, this crate
//! runs a worklist fixed point over abstract transfer summaries compiled
//! from the `acr-cfg` device models, producing — without a single
//! simulation round — an over-approximate **may-propagation** relation:
//! for each (origin prefix, router, session, direction), which abstract
//! route attributes (AS-path length interval, LOCAL_PREF interval,
//! community may-set, supporting config lines) may arrive and may be
//! exported.
//!
//! Because the relation over-approximates every concrete behaviour, its
//! *negatives* are definite: a prefix that **cannot** be accepted
//! anywhere, a policy node that **cannot** match any route, a community
//! that **cannot** have been set upstream. Three consumers build on
//! that:
//!
//! - `acr-lint`'s cross-device rules report the definite negatives as
//!   network-wide diagnostics;
//! - `acr-core::validate` skips simulating repair candidates whose
//!   patch is provably invisible to the violated properties
//!   ([`gate::patch_invisible`]);
//! - `acr-localize` boosts lines on the abstract derivation path of a
//!   violated property ([`FlowFacts::support_for`]).
//!
//! The soundness argument lives in the module docs of [`transfer`] and
//! [`gate`]; the property suite in `tests/prop_flow.rs` checks it
//! against `acr-sim` over random topologies and Table-1 faults.

pub mod analysis;
pub mod domain;
pub mod gate;
pub mod transfer;

pub use analysis::{analyze, analyze_with_models, DirFacts, FlowFacts, SessionFacts};
pub use domain::{AbstractRoute, Interval};
pub use gate::patch_invisible;
pub use transfer::{abstract_policy, TransferLog};
