//! Abstract transfer functions: route-policy evaluation over
//! [`AbstractRoute`]s.
//!
//! The compiled per-device summaries are the [`DeviceModel`]s themselves
//! (policies resolved by name, prefix lists collected, peer-group
//! inheritance applied); this module interprets one policy application
//! abstractly, mirroring `acr_sim::policy::eval_policy`:
//!
//! - nodes are scanned in ascending node order;
//! - a prefix-list clause is **exact** given the concrete prefix under
//!   analysis (the entry match `prefix covers p && ge <= len(p) <= le`
//!   does not depend on abstract state), so it answers yes/no;
//! - a community clause *may* match iff the community is in the route's
//!   may-set — and **definitely doesn't** iff it is outside (may-sets
//!   over-approximate, so absence is definite);
//! - the first node whose every clause definitely matches ends the scan
//!   (later nodes are concretely unreachable for this prefix); nodes
//!   that may match contribute their outcome as one possible world;
//! - the result is the join over every may-permitting world; `None`
//!   means the route is **definitely denied** — the definite negative
//!   the cross-device lints build on.
//!
//! Soundness: every concrete evaluation picks the first node whose
//! clauses all match. That node is `No` for the abstract scan only if a
//! clause definitely fails — impossible when the concrete clause
//! matched (exact prefix clauses agree; a concretely present community
//! is in the may-set by the RIB invariant). The scan cannot have
//! stopped earlier at a `Must` node, because a definitely-matching node
//! also matches concretely and would have been the concrete pick. So
//! the concrete node's world is always joined in.

use crate::domain::{AbstractRoute, Interval};
use acr_cfg::model::{ApplyAction, MatchCond, PolicyNode};
use acr_cfg::{DeviceModel, LineId};
use acr_net_types::{Prefix, RouterId};
use std::collections::BTreeSet;

/// How a policy node relates to the abstract route under analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MatchState {
    /// Some clause definitely fails.
    No,
    /// Every clause may hold, at least one only maybe.
    May,
    /// Every clause definitely holds.
    Must,
}

/// Statically observable evaluation events, collected across the whole
/// fixed point; the complement of "live" is the definite-negative
/// evidence the lints report.
#[derive(Debug, Default, Clone)]
pub struct TransferLog {
    /// Node header lines that may-matched at least one route.
    pub live_nodes: BTreeSet<LineId>,
    /// `if-match community` clause lines that may-matched at least once.
    pub live_community_clauses: BTreeSet<LineId>,
}

/// One abstract policy application: `policy` of `model` applied to a
/// route for `p`. `export_hop` selects export semantics (the sender
/// prepends its own ASN unless the matched node overwrote the path, and
/// LOCAL_PREF resets to the default — mirroring `acr_sim::bgp::export`).
///
/// Returns `None` iff the route is definitely denied. An absent or
/// undefined policy permits unchanged, like the simulator.
pub fn abstract_policy(
    model: &DeviceModel,
    router: RouterId,
    policy: Option<&str>,
    p: Prefix,
    input: &AbstractRoute,
    export_hop: bool,
    log: Option<&mut TransferLog>,
) -> Option<AbstractRoute> {
    let hop = |mut r: AbstractRoute, overwrote: bool| {
        if export_hop {
            if !overwrote {
                r.path_len = r.path_len.add(1);
            }
            r.local_pref = Interval::point(acr_sim::route::DEFAULT_LOCAL_PREF);
        }
        r
    };
    let Some(nodes) = policy.and_then(|name| model.route_policies.get(name)) else {
        // No policy attached, or the attached name is undefined: the
        // simulator permits the route unchanged.
        return Some(hop(input.clone(), false));
    };

    let mut log = log;
    let mut acc: Option<AbstractRoute> = None;
    for node in nodes {
        let (state, live_comm) = node_match_state(model, node, p, input);
        if state == MatchState::No {
            continue;
        }
        if let Some(log) = log.as_deref_mut() {
            log.live_nodes.insert(LineId::new(router, node.line));
            for line in live_comm {
                log.live_community_clauses.insert(LineId::new(router, line));
            }
        }
        if node.action == acr_cfg::PlAction::Permit {
            let (route, overwrote) = apply_node(node, p, input, router);
            let world = hop(route, overwrote);
            match &mut acc {
                Some(a) => {
                    a.join_from(&world);
                }
                None => acc = Some(world),
            }
        }
        if state == MatchState::Must {
            // Concretely, evaluation stops at the first definite match;
            // later nodes are unreachable for this prefix.
            break;
        }
    }
    acc
}

/// Clause conjunction for one node. Returns the match state plus the
/// community-clause lines that may-matched (for liveness logging).
fn node_match_state(
    model: &DeviceModel,
    node: &PolicyNode,
    p: Prefix,
    input: &AbstractRoute,
) -> (MatchState, Vec<u32>) {
    let mut state = MatchState::Must;
    let mut live_comm = Vec::new();
    for (cond, line) in &node.matches {
        match cond {
            MatchCond::PrefixList(list) => {
                // Exact given the concrete prefix: Some(true) is the only
                // satisfied shape (undefined lists never match).
                if !matches!(model.eval_prefix_list(list, p), Some((true, _))) {
                    return (MatchState::No, Vec::new());
                }
            }
            MatchCond::Community(c) => {
                if input.communities.contains(c) {
                    // Present in the may-set: may match, never must.
                    live_comm.push(*line);
                    state = MatchState::May;
                } else {
                    // Outside the may-set: definitely absent.
                    return (MatchState::No, Vec::new());
                }
            }
        }
    }
    (state, live_comm)
}

/// Applies a permit node's actions abstractly (in statement order, like
/// the simulator). Returns the transformed route and whether the node
/// overwrote the AS path.
fn apply_node(
    node: &PolicyNode,
    _p: Prefix,
    input: &AbstractRoute,
    router: RouterId,
) -> (AbstractRoute, bool) {
    let mut out = input.clone();
    out.support.insert(LineId::new(router, node.line));
    for cond_line in node.matches.iter().map(|(_, l)| *l) {
        out.support.insert(LineId::new(router, cond_line));
    }
    let mut overwrote = false;
    for (action, line) in &node.applies {
        out.support.insert(LineId::new(router, *line));
        match action {
            ApplyAction::AsPathOverwrite(_) => {
                out.path_len = Interval::point(1);
                overwrote = true;
            }
            ApplyAction::AsPathPrepend { count, .. } => {
                out.path_len = out.path_len.add(*count);
            }
            ApplyAction::LocalPref(v) => {
                out.local_pref = Interval::point(*v);
            }
            ApplyAction::Med(_) => {} // MED is not tracked by the domain
            ApplyAction::Community(c) => {
                out.communities.insert(*c);
            }
        }
    }
    (out, overwrote)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_cfg::parse::parse_device;

    fn model(text: &str) -> DeviceModel {
        DeviceModel::from_config(&parse_device("R", text).unwrap())
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn prefix_clause_is_exact_and_first_must_match_stops() {
        let m = model(
            "bgp 65001\n\
             route-policy P permit node 10\n if-match ip-prefix L\n apply local-preference 200\n\
             route-policy P permit node 20\n apply local-preference 300\n\
             ip prefix-list L index 10 permit 10.0.0.0 16\n",
        );
        let input = AbstractRoute::origin([]);
        // 10.0/16 definitely matches node 10 — node 20 is unreachable.
        let out = abstract_policy(
            &m,
            RouterId(0),
            Some("P"),
            p("10.0.0.0/16"),
            &input,
            false,
            None,
        )
        .unwrap();
        assert_eq!(out.local_pref, Interval::point(200));
        // 20.0/16 misses node 10, definitely matches node 20.
        let out = abstract_policy(
            &m,
            RouterId(0),
            Some("P"),
            p("20.0.0.0/16"),
            &input,
            false,
            None,
        )
        .unwrap();
        assert_eq!(out.local_pref, Interval::point(300));
    }

    #[test]
    fn community_clause_joins_both_worlds() {
        let m = model(
            "bgp 65001\n\
             route-policy P permit node 10\n if-match community 65000:1\n apply local-preference 200\n\
             route-policy P permit node 20\n apply local-preference 50\n",
        );
        let mut input = AbstractRoute::origin([]);
        input.communities.insert("65000:1".parse().unwrap());
        let out = abstract_policy(
            &m,
            RouterId(0),
            Some("P"),
            p("10.0.0.0/16"),
            &input,
            false,
            None,
        )
        .unwrap();
        // Node 10 may match (community maybe present), node 20 must:
        // both worlds joined.
        assert_eq!(out.local_pref, Interval::new(50, 200));
        // Without the community in the may-set, node 10 is definitely
        // skipped.
        let input = AbstractRoute::origin([]);
        let out = abstract_policy(
            &m,
            RouterId(0),
            Some("P"),
            p("10.0.0.0/16"),
            &input,
            false,
            None,
        )
        .unwrap();
        assert_eq!(out.local_pref, Interval::point(50));
    }

    #[test]
    fn deny_only_policy_is_definite_deny_and_export_hop_prepends() {
        let m = model(
            "bgp 65001\n\
             route-policy D deny node 10\n\
             route-policy O permit node 10\n apply as-path overwrite\n",
        );
        let input = AbstractRoute::origin([]);
        assert!(abstract_policy(
            &m,
            RouterId(0),
            Some("D"),
            p("10.0.0.0/16"),
            &input,
            true,
            None
        )
        .is_none());
        // Overwrite pins the exported length to 1 (no prepend applied).
        let out = abstract_policy(
            &m,
            RouterId(0),
            Some("O"),
            p("10.0.0.0/16"),
            &input,
            true,
            None,
        )
        .unwrap();
        assert_eq!(out.path_len, Interval::point(1));
        // No policy: the export hop prepends one hop.
        let out =
            abstract_policy(&m, RouterId(0), None, p("10.0.0.0/16"), &input, true, None).unwrap();
        assert_eq!(out.path_len, Interval::point(1));
        assert_eq!(
            out.local_pref,
            Interval::point(acr_sim::route::DEFAULT_LOCAL_PREF)
        );
    }
}
