//! The abstract route domain.
//!
//! An [`AbstractRoute`] over-approximates *every* concrete [`acr_sim`]
//! route a given (router, prefix) pair may ever hold: AS-path length and
//! LOCAL_PREF as intervals, communities as a *may*-set (a community
//! outside the set is definitely absent), plus the set of configuration
//! lines that may have contributed to the route — the abstract
//! derivation path the localization prior boosts.
//!
//! The domain is a join-semilattice. Path-length intervals are the only
//! unbounded component (`as-path prepend` in a policy cycle grows them
//! forever), so joins accept a widening cap: once the upper bound
//! crosses the cap it jumps to [`Interval::INF`], which guarantees the
//! fixed point terminates (see `analysis.rs` for the cap choice).

use acr_cfg::LineId;
use acr_net_types::Community;
use std::collections::BTreeSet;
use std::fmt;

/// A closed interval of `u32`s; `hi == Interval::INF` means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Interval {
    pub lo: u32,
    pub hi: u32,
}

impl Interval {
    /// The "unbounded above" sentinel.
    pub const INF: u32 = u32::MAX;

    pub fn point(v: u32) -> Interval {
        Interval { lo: v, hi: v }
    }

    pub fn new(lo: u32, hi: u32) -> Interval {
        debug_assert!(lo <= hi);
        Interval { lo, hi }
    }

    pub fn contains(&self, v: u32) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Least upper bound.
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Adds `n` to both bounds (saturating; `INF` stays `INF`).
    pub fn add(&self, n: u32) -> Interval {
        Interval {
            lo: self.lo.saturating_add(n).min(Self::INF - 1),
            hi: if self.hi == Self::INF {
                Self::INF
            } else {
                self.hi.saturating_add(n)
            },
        }
    }

    /// Widening: an upper bound past `cap` jumps to `INF`, so chains of
    /// joins through `add` cannot climb forever.
    pub fn widen(&self, cap: u32) -> Interval {
        if self.hi != Self::INF && self.hi > cap {
            Interval {
                lo: self.lo,
                hi: Self::INF,
            }
        } else {
            *self
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hi == Self::INF {
            write!(f, "[{}, inf)", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// The abstract value: everything a route for one prefix at one router
/// *may* look like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractRoute {
    /// AS-path length (hops) interval.
    pub path_len: Interval,
    /// LOCAL_PREF interval.
    pub local_pref: Interval,
    /// Communities that *may* be attached. Anything outside is
    /// definitely absent — the complement drives the definite-negative
    /// lints.
    pub communities: BTreeSet<Community>,
    /// Configuration lines that may have contributed to the route — the
    /// abstract derivation path.
    pub support: BTreeSet<LineId>,
}

impl AbstractRoute {
    /// A locally originated route: empty AS path, default LOCAL_PREF,
    /// no communities (matches `acr_sim::Route::local`).
    pub fn origin(support: impl IntoIterator<Item = LineId>) -> AbstractRoute {
        AbstractRoute {
            path_len: Interval::point(0),
            local_pref: Interval::point(acr_sim::route::DEFAULT_LOCAL_PREF),
            communities: BTreeSet::new(),
            support: support.into_iter().collect(),
        }
    }

    /// In-place join; returns whether `self` changed (the fixed-point
    /// driver's dirty test).
    pub fn join_from(&mut self, other: &AbstractRoute) -> bool {
        let mut changed = false;
        let pl = self.path_len.join(&other.path_len);
        if pl != self.path_len {
            self.path_len = pl;
            changed = true;
        }
        let lp = self.local_pref.join(&other.local_pref);
        if lp != self.local_pref {
            self.local_pref = lp;
            changed = true;
        }
        for c in &other.communities {
            changed |= self.communities.insert(*c);
        }
        for l in &other.support {
            changed |= self.support.insert(*l);
        }
        changed
    }

    /// Whether this abstract value covers a concrete simulator route —
    /// the soundness relation the proptest suite checks. (`support` and
    /// MED are metadata, not part of the ordering.)
    pub fn covers(&self, route: &acr_sim::Route) -> bool {
        self.path_len.contains(route.as_path.len() as u32)
            && self.local_pref.contains(route.local_pref)
            && route
                .communities
                .iter()
                .all(|c| self.communities.contains(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_join_add_widen() {
        let a = Interval::point(2);
        let b = Interval::new(4, 6);
        assert_eq!(a.join(&b), Interval::new(2, 6));
        assert_eq!(a.add(3), Interval::new(5, 5));
        assert_eq!(
            Interval::new(1, 9).widen(8),
            Interval::new(1, Interval::INF)
        );
        assert_eq!(Interval::new(1, 8).widen(8), Interval::new(1, 8));
        assert!(Interval::new(1, Interval::INF).contains(1_000_000));
        assert_eq!(
            Interval::new(2, Interval::INF).add(5),
            Interval::new(7, Interval::INF)
        );
    }

    #[test]
    fn join_from_reports_change() {
        let mut a = AbstractRoute::origin([]);
        let b = AbstractRoute {
            path_len: Interval::point(3),
            ..AbstractRoute::origin([])
        };
        assert!(a.join_from(&b));
        assert!(!a.join_from(&b));
        assert_eq!(a.path_len, Interval::new(0, 3));
    }
}
