//! The network-wide propagation fixed point.
//!
//! [`analyze`] computes, without simulating a single routing round, an
//! over-approximate *may-propagation* relation: for every (router,
//! origin prefix) pair, the join of every abstract route that may ever
//! sit in that router's RIB, and per session/direction the prefixes
//! that may be offered (survive the sender's export policy) and
//! accepted (also survive the receiver's import policy).
//!
//! The driver is a standard worklist over (router, prefix) facts:
//! originations seed the RIB (mirroring `acr_sim::origin`), each dirty
//! fact is pushed through every established session's export → import
//! transfer ([`crate::transfer`]), and the receiving fact joins the
//! result. AS-path loop suppression is deliberately ignored — dropping
//! a check only grows the may-relation, and it is exactly what
//! `as-path overwrite` defeats in the paper's incident. Path-length
//! intervals are widened to `[lo, inf)` once their upper bound passes
//! `routers + 8`, which bounds the lattice height; everything else
//! (LOCAL_PREF constants, community sets, support lines) is finite, so
//! the fixed point terminates.
//!
//! The worklist is a `BTreeSet` popped in order, so iteration counts,
//! fact contents and the transfer log are deterministic — the run
//! journal can assert byte-identical flow summaries at any thread
//! count.

use crate::domain::AbstractRoute;
use crate::transfer::{abstract_policy, TransferLog};
use acr_cfg::{DeviceModel, LineId, NetworkConfig};
use acr_net_types::{Prefix, RouterId};
use acr_obs::metrics::Counter;
use acr_sim::session::establish;
use acr_sim::Session;
use acr_topo::Topology;
use std::collections::{BTreeMap, BTreeSet};

static FIXPOINT_ITERS: Counter = Counter::new("flow.fixpoint.iterations");
static FACTS: Counter = Counter::new("flow.facts");

/// Per-direction may-propagation facts for one session.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DirFacts {
    /// Prefixes that may survive the sender's export policy.
    pub offered: BTreeSet<Prefix>,
    /// Prefixes that may also survive the receiver's import policy.
    pub accepted: BTreeSet<Prefix>,
}

/// Both directions of one established session (parallel to
/// [`FlowFacts::sessions`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SessionFacts {
    /// `session.a` exporting to `session.b`.
    pub a_to_b: DirFacts,
    /// `session.b` exporting to `session.a`.
    pub b_to_a: DirFacts,
}

/// The analysis result: the abstract RIB plus everything the lints and
/// the localization prior consume.
#[derive(Debug, Clone)]
pub struct FlowFacts {
    /// Join of every route (router, prefix) may ever hold.
    pub rib: BTreeMap<(RouterId, Prefix), AbstractRoute>,
    /// Established BGP sessions (the propagation graph's edges).
    pub sessions: Vec<Session>,
    /// May-offered / may-accepted prefixes per session, index-parallel
    /// to [`FlowFacts::sessions`].
    pub session_facts: Vec<SessionFacts>,
    /// Route-policies attached to an established session (the *applied*
    /// policies), with one applying line for diagnostics.
    pub applied_policies: BTreeMap<(RouterId, String), LineId>,
    /// Liveness log: policy nodes / community clauses that may-matched
    /// at least once anywhere in the network.
    pub log: TransferLog,
    /// Originated prefixes per router with their defining lines.
    pub origins: BTreeMap<(RouterId, Prefix), Vec<LineId>>,
    /// Worklist pops until the fixed point settled.
    pub iterations: u64,
}

impl FlowFacts {
    /// The abstract route `router` may hold for `prefix`, if any.
    pub fn may_have(&self, router: RouterId, prefix: Prefix) -> Option<&AbstractRoute> {
        self.rib.get(&(router, prefix))
    }

    /// Number of (router, prefix) facts in the abstract RIB.
    pub fn fact_count(&self) -> usize {
        self.rib.len()
    }

    /// Union of the abstract derivation support of every fact whose
    /// prefix is comparable with `cone` — the lines that may influence
    /// routing for destinations under `cone`. This is the localization
    /// prior's line set for a violated property.
    pub fn support_for(&self, cone: Prefix) -> BTreeSet<LineId> {
        let mut out = BTreeSet::new();
        for ((_, p), route) in &self.rib {
            if p.overlaps(cone) {
                out.extend(route.support.iter().copied());
            }
        }
        out
    }
}

/// Analyzes a network, building the semantic models itself (the shape of
/// `acr_lint::lint_network`).
pub fn analyze(topo: &Topology, cfg: &NetworkConfig) -> FlowFacts {
    let models: Vec<DeviceModel> = topo
        .routers()
        .iter()
        .map(|r| match cfg.device(r.id) {
            Some(d) => DeviceModel::from_config(d),
            None => DeviceModel {
                name: r.name.clone(),
                ..DeviceModel::default()
            },
        })
        .collect();
    analyze_with_models(topo, &models)
}

/// Analyzes against pre-built semantic models (`models` parallel to
/// `topo.routers()`).
pub fn analyze_with_models(topo: &Topology, models: &[DeviceModel]) -> FlowFacts {
    let (sessions, _diags) = establish(topo, models);
    let mut session_facts = vec![SessionFacts::default(); sessions.len()];

    // Which sessions each router participates in.
    let mut by_router: BTreeMap<RouterId, Vec<usize>> = BTreeMap::new();
    let mut applied_policies: BTreeMap<(RouterId, String), LineId> = BTreeMap::new();
    for (si, s) in sessions.iter().enumerate() {
        by_router.entry(s.a).or_default().push(si);
        by_router.entry(s.b).or_default().push(si);
        for (r, policy) in [
            (s.a, &s.a_import),
            (s.a, &s.a_export),
            (s.b, &s.b_import),
            (s.b, &s.b_export),
        ] {
            if let Some((name, line)) = policy {
                applied_policies.entry((r, name.clone())).or_insert(*line);
            }
        }
    }

    // Seed: originations, exactly the simulator's universe.
    let mut rib: BTreeMap<(RouterId, Prefix), AbstractRoute> = BTreeMap::new();
    let mut origins: BTreeMap<(RouterId, Prefix), Vec<LineId>> = BTreeMap::new();
    let mut worklist: BTreeSet<(RouterId, Prefix)> = BTreeSet::new();
    for (i, model) in models.iter().enumerate() {
        let r = RouterId(i as u32);
        for (p, origination) in acr_sim::origin::router_origins(topo, r, model) {
            let lines: Vec<LineId> = origination
                .sources
                .iter()
                .flat_map(|(_, ls)| ls.iter().copied())
                .collect();
            rib.entry((r, p))
                .or_insert_with(|| AbstractRoute::origin(lines.iter().copied()))
                .join_from(&AbstractRoute::origin(lines.iter().copied()));
            origins.insert((r, p), lines);
            worklist.insert((r, p));
        }
    }

    let widen_cap = topo.routers().len() as u32 + 8;
    let mut log = TransferLog::default();
    let mut iterations = 0u64;

    while let Some(&(r, p)) = worklist.iter().next() {
        worklist.remove(&(r, p));
        iterations += 1;
        let fact = rib
            .get(&(r, p))
            .expect("worklist entries always have a fact")
            .clone();
        let Some(sids) = by_router.get(&r) else {
            continue;
        };
        for &si in sids {
            let session = &sessions[si];
            let Some(out_view) = session.view_of(r) else {
                continue;
            };
            let peer = out_view.peer;
            let model = &models[r.index()];
            let exported = abstract_policy(
                model,
                r,
                out_view.export.map(|(n, _)| n),
                p,
                &fact,
                true,
                Some(&mut log),
            );
            let Some(mut exported) = exported else {
                continue; // definitely denied on export
            };
            exported.support.extend(out_view.base_lines.iter().copied());
            if let Some((_, line)) = out_view.export {
                exported.support.insert(line);
            }
            let dir = dir_facts(&mut session_facts[si], session, r);
            dir.offered.insert(p);

            let in_view = session.view_of(peer).expect("peer_of implies a peer view");
            let peer_model = &models[peer.index()];
            let imported = abstract_policy(
                peer_model,
                peer,
                in_view.import.map(|(n, _)| n),
                p,
                &exported,
                false,
                Some(&mut log),
            );
            let Some(mut imported) = imported else {
                continue; // definitely denied on import
            };
            imported.support.extend(in_view.base_lines.iter().copied());
            if let Some((_, line)) = in_view.import {
                imported.support.insert(line);
            }
            imported.path_len = imported.path_len.widen(widen_cap);
            let dir = dir_facts(&mut session_facts[si], session, r);
            dir.accepted.insert(p);

            let slot = rib.entry((peer, p)).or_insert_with(|| AbstractRoute {
                path_len: imported.path_len,
                local_pref: imported.local_pref,
                communities: BTreeSet::new(),
                support: BTreeSet::new(),
            });
            if slot.join_from(&imported) {
                worklist.insert((peer, p));
            }
        }
    }

    FIXPOINT_ITERS.add(iterations);
    FACTS.add(rib.len() as u64);

    FlowFacts {
        rib,
        sessions,
        session_facts,
        applied_policies,
        log,
        origins,
        iterations,
    }
}

/// The direction record for `sender` on `session`.
fn dir_facts<'f>(
    facts: &'f mut SessionFacts,
    session: &Session,
    sender: RouterId,
) -> &'f mut DirFacts {
    if session.a == sender {
        &mut facts.a_to_b
    } else {
        &mut facts.b_to_a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_workloads::fig2::{fig2_incident, DCN_PREFIX, POP_A_PREFIX, POP_B_PREFIX};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn fig2_customer_prefixes_reach_every_backbone_router() {
        let fig2 = fig2_incident();
        let facts = analyze(&fig2.topo, &fig2.broken);
        assert_eq!(facts.sessions.len(), 7, "all Figure-2 sessions establish");
        for prefix in [POP_A_PREFIX, POP_B_PREFIX, DCN_PREFIX] {
            for router in [fig2.a, fig2.b, fig2.c, fig2.s] {
                assert!(
                    facts.may_have(router, p(prefix)).is_some(),
                    "{prefix} must be may-reachable at router {router}"
                );
            }
        }
    }

    #[test]
    fn fig2_intended_still_overapproximates_and_terminates() {
        let fig2 = fig2_incident();
        let facts = analyze(&fig2.topo, &fig2.intended);
        // The scoped lists still let each customer prefix cross the core.
        assert!(facts.may_have(fig2.b, p(DCN_PREFIX)).is_some());
        assert!(facts.may_have(fig2.s, p(POP_B_PREFIX)).is_some());
        assert!(facts.iterations > 0);
        assert!(facts.fact_count() >= 3);
    }

    #[test]
    fn support_lines_cover_the_overriding_policy() {
        let fig2 = fig2_incident();
        let facts = analyze(&fig2.topo, &fig2.broken);
        let support = facts.support_for(p(POP_B_PREFIX));
        // A's Override_All import (node header, line 10 of A's config)
        // may rewrite 10.0/16 transit routes — it must be on the
        // abstract derivation path of the flapping prefix.
        assert!(
            support.iter().any(|l| l.router == fig2.a && l.line == 10),
            "support = {support:?}"
        );
    }
}
