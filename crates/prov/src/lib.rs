//! # acr-prov
//!
//! Provenance queries over the simulator's derivation arena, and the
//! test-coverage containers that feed Spectrum-Based Fault Localization.
//!
//! The paper (§3.2 observation (2), §4.1) proposes computing configuration
//! coverage with provenance methods (Y!) or NetCov; here a route's
//! derivation already records its supporting configuration lines, so
//! coverage is the transitive closure over the derivation graph:
//!
//! - [`Provenance::coverage`] — all lines a set of derivations depends on,
//! - [`Provenance::leaves`] — the *leaf* derivation nodes, whose count is
//!   MetaProv's search space in the paper's Figure 3a,
//! - [`Provenance::explain`] — a human-readable derivation tree,
//! - [`CoverageMatrix`] — the per-test line-coverage spectrum consumed by
//!   `acr-localize`.

pub mod coverage;
pub mod graph;

pub use coverage::{CoverageMatrix, TestCoverage, TestId};
pub use graph::Provenance;
