//! Per-test coverage — the SBFL spectrum's raw material.
//!
//! A [`CoverageMatrix`] holds, for every verification test, whether it
//! passed and which configuration lines its outcome depended on. The
//! localization layer folds this into per-line `(passed(s), failed(s))`
//! counters, exactly the inputs of the paper's Equation 1 (Tarantula).

use acr_cfg::LineId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a verification test (index into the test suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TestId(pub u32);

impl fmt::Display for TestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One test's coverage record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCoverage {
    pub test: TestId,
    pub passed: bool,
    pub lines: BTreeSet<LineId>,
}

/// The full spectrum: every test's verdict and covered lines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMatrix {
    tests: Vec<TestCoverage>,
}

impl CoverageMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        CoverageMatrix::default()
    }

    /// Adds one test's record.
    pub fn push(&mut self, record: TestCoverage) {
        self.tests.push(record);
    }

    /// All records.
    pub fn tests(&self) -> &[TestCoverage] {
        &self.tests
    }

    /// Number of tests.
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// Whether the matrix has no tests.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// Total passed / failed counts — `totalpassed` and `totalfailed` of
    /// the paper's Equation 1.
    pub fn totals(&self) -> (usize, usize) {
        let passed = self.tests.iter().filter(|t| t.passed).count();
        (passed, self.tests.len() - passed)
    }

    /// Per-line `(passed(s), failed(s))` counters over all tests.
    pub fn per_line_counts(&self) -> BTreeMap<LineId, (usize, usize)> {
        let mut out: BTreeMap<LineId, (usize, usize)> = BTreeMap::new();
        for t in &self.tests {
            for line in &t.lines {
                let slot = out.entry(*line).or_default();
                if t.passed {
                    slot.0 += 1;
                } else {
                    slot.1 += 1;
                }
            }
        }
        out
    }

    /// Every line covered by at least one test.
    pub fn covered_lines(&self) -> BTreeSet<LineId> {
        self.tests
            .iter()
            .flat_map(|t| t.lines.iter().copied())
            .collect()
    }

    /// Lines covered by at least one *failed* test — the SBFL candidate
    /// pool (lines never touched by a failure cannot explain it).
    pub fn failure_covered_lines(&self) -> BTreeSet<LineId> {
        self.tests
            .iter()
            .filter(|t| !t.passed)
            .flat_map(|t| t.lines.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_net_types::RouterId;

    fn l(r: u32, line: u32) -> LineId {
        LineId::new(RouterId(r), line)
    }

    fn cov(test: u32, passed: bool, lines: &[LineId]) -> TestCoverage {
        TestCoverage {
            test: TestId(test),
            passed,
            lines: lines.iter().copied().collect(),
        }
    }

    /// The worked example of §5: three tests, one failed; the line covered
    /// by 1 failed + 1 passed gets counts (1, 1).
    #[test]
    fn per_line_counts_match_worked_example() {
        let mut m = CoverageMatrix::new();
        m.push(cov(0, true, &[l(0, 5), l(0, 11)]));
        m.push(cov(1, true, &[l(0, 9), l(0, 11)]));
        m.push(cov(2, false, &[l(0, 9), l(0, 11)]));
        assert_eq!(m.totals(), (2, 1));
        let counts = m.per_line_counts();
        assert_eq!(counts[&l(0, 9)], (1, 1));
        assert_eq!(counts[&l(0, 11)], (2, 1));
        assert_eq!(counts[&l(0, 5)], (1, 0));
    }

    #[test]
    fn failure_pool_excludes_pass_only_lines() {
        let mut m = CoverageMatrix::new();
        m.push(cov(0, true, &[l(0, 1)]));
        m.push(cov(1, false, &[l(0, 2)]));
        assert_eq!(m.failure_covered_lines(), [l(0, 2)].into_iter().collect());
        assert_eq!(m.covered_lines().len(), 2);
    }

    #[test]
    fn empty_matrix_totals() {
        let m = CoverageMatrix::new();
        assert_eq!(m.totals(), (0, 0));
        assert!(m.is_empty());
        assert!(m.per_line_counts().is_empty());
    }
}
