//! Graph-level queries over a derivation arena.

use acr_cfg::LineId;
use acr_sim::{DerivArena, DerivId, DerivKind};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// A read-only provenance view over a simulation's derivation arena.
pub struct Provenance<'a> {
    arena: &'a DerivArena,
}

impl<'a> Provenance<'a> {
    /// Wraps an arena.
    pub fn new(arena: &'a DerivArena) -> Self {
        Provenance { arena }
    }

    /// Configuration-line coverage: every line in the transitive closure
    /// of `roots`.
    pub fn coverage(&self, roots: impl IntoIterator<Item = DerivId>) -> BTreeSet<LineId> {
        self.arena.closure_lines(roots).into_iter().collect()
    }

    /// The leaf derivation nodes (no parents) reachable from `roots` —
    /// origination events, base FIB entries, PBR matches. Their count is
    /// the MetaProv search space of the paper's Figure 3a.
    pub fn leaves(&self, roots: impl IntoIterator<Item = DerivId>) -> Vec<DerivId> {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<DerivId> = roots.into_iter().collect();
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let node = self.arena.node(id);
            if node.parents.is_empty() {
                out.push(id);
            } else {
                stack.extend_from_slice(&node.parents);
            }
        }
        out.sort_unstable();
        out
    }

    /// The distinct configuration lines on the *leaves* of the derivation
    /// graph — MetaProv's candidate root causes.
    pub fn leaf_lines(&self, roots: impl IntoIterator<Item = DerivId>) -> BTreeSet<LineId> {
        self.leaves(roots)
            .into_iter()
            .flat_map(|id| self.arena.node(id).lines.iter().copied())
            .collect()
    }

    /// Number of distinct derivation nodes reachable from `roots`.
    pub fn node_count(&self, roots: impl IntoIterator<Item = DerivId>) -> usize {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<DerivId> = roots.into_iter().collect();
        while let Some(id) = stack.pop() {
            if seen.insert(id) {
                stack.extend_from_slice(&self.arena.node(id).parents);
            }
        }
        seen.len()
    }

    /// Renders the derivation tree below `root` as indented text, for
    /// operator-facing "why is this route here" explanations.
    pub fn explain(&self, root: DerivId) -> String {
        let mut out = String::new();
        self.explain_into(root, 0, &mut out, &mut BTreeSet::new());
        out
    }

    fn explain_into(
        &self,
        id: DerivId,
        depth: usize,
        out: &mut String,
        seen: &mut BTreeSet<DerivId>,
    ) {
        let node = self.arena.node(id);
        for _ in 0..depth {
            out.push_str("  ");
        }
        let kind = match node.kind {
            DerivKind::OriginNetwork => "originate(network)",
            DerivKind::OriginStatic => "originate(static)",
            DerivKind::OriginConnected => "originate(connected)",
            DerivKind::Import => "import",
            DerivKind::Export => "export",
            DerivKind::FibConnected => "fib(connected)",
            DerivKind::FibStatic => "fib(static)",
            DerivKind::Pbr => "pbr",
            DerivKind::ImportDenied => "import-denied",
            DerivKind::ExportDenied => "export-denied",
        };
        let _ = write!(out, "{kind}");
        if !node.lines.is_empty() {
            let _ = write!(out, " [");
            for (i, l) in node.lines.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, " ");
                }
                let _ = write!(out, "{l}");
            }
            let _ = write!(out, "]");
        }
        out.push('\n');
        if !seen.insert(id) {
            for _ in 0..=depth {
                out.push_str("  ");
            }
            out.push_str("(shared subtree elided)\n");
            return;
        }
        for parent in &node.parents {
            self.explain_into(*parent, depth + 1, out, seen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_net_types::RouterId;

    fn l(r: u32, line: u32) -> LineId {
        LineId::new(RouterId(r), line)
    }

    fn chain() -> (DerivArena, DerivId, DerivId, DerivId) {
        let mut a = DerivArena::new();
        let origin = a.intern(DerivKind::OriginNetwork, vec![l(2, 2)], vec![]);
        let export = a.intern(DerivKind::Export, vec![l(2, 3)], vec![origin]);
        let import = a.intern(DerivKind::Import, vec![l(1, 4)], vec![export]);
        (a, origin, export, import)
    }

    #[test]
    fn coverage_is_closure() {
        let (a, _, _, import) = chain();
        let p = Provenance::new(&a);
        let cov = p.coverage([import]);
        assert_eq!(cov, [l(1, 4), l(2, 2), l(2, 3)].into_iter().collect());
    }

    #[test]
    fn leaves_are_parentless() {
        let (a, origin, _, import) = chain();
        let p = Provenance::new(&a);
        assert_eq!(p.leaves([import]), vec![origin]);
        assert_eq!(p.leaf_lines([import]), [l(2, 2)].into_iter().collect());
        assert_eq!(p.node_count([import]), 3);
    }

    #[test]
    fn multiple_roots_union() {
        let mut a = DerivArena::new();
        let o1 = a.intern(DerivKind::OriginStatic, vec![l(0, 1)], vec![]);
        let o2 = a.intern(DerivKind::FibStatic, vec![l(1, 1)], vec![]);
        let p = Provenance::new(&a);
        assert_eq!(p.leaves([o1, o2]).len(), 2);
        assert_eq!(p.coverage([o1, o2]).len(), 2);
    }

    #[test]
    fn explain_renders_tree() {
        let (a, _, _, import) = chain();
        let p = Provenance::new(&a);
        let text = p.explain(import);
        assert!(text.contains("import [r1:4]"), "{text}");
        assert!(text.contains("  export [r2:3]"), "{text}");
        assert!(text.contains("    originate(network) [r2:2]"), "{text}");
    }

    #[test]
    fn explain_elides_shared_subtrees() {
        let mut a = DerivArena::new();
        let o = a.intern(DerivKind::OriginNetwork, vec![l(0, 1)], vec![]);
        let e1 = a.intern(DerivKind::Export, vec![l(0, 2)], vec![o]);
        let top = a.intern(DerivKind::Import, vec![], vec![o, e1]);
        let p = Provenance::new(&a);
        let text = p.explain(top);
        assert!(text.contains("elided"), "{text}");
    }
}
