//! Suspiciousness rankings.

use acr_cfg::LineId;
use std::fmt;

/// A deterministic ranking of configuration lines by suspiciousness
/// (descending score, ties broken by line id for reproducibility).
#[derive(Debug, Clone, PartialEq)]
pub struct Ranking {
    entries: Vec<(LineId, f64)>,
}

impl Ranking {
    /// Builds a ranking from unordered scores.
    pub fn new(mut entries: Vec<(LineId, f64)>) -> Self {
        entries.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        Ranking { entries }
    }

    /// All entries, most suspicious first.
    pub fn entries(&self) -> &[(LineId, f64)] {
        &self.entries
    }

    /// The most suspicious line.
    pub fn top(&self) -> Option<(LineId, f64)> {
        self.entries.first().copied()
    }

    /// The `k` most suspicious lines.
    pub fn top_k(&self, k: usize) -> &[(LineId, f64)] {
        &self.entries[..k.min(self.entries.len())]
    }

    /// Every line tied for the maximum score (the paper's Step 2 selects
    /// "the statements with the highest suspiciousness across all
    /// routers").
    pub fn top_tied(&self) -> Vec<LineId> {
        let Some((_, best)) = self.top() else {
            return Vec::new();
        };
        self.entries
            .iter()
            .take_while(|(_, s)| (s - best).abs() < 1e-12)
            .map(|(l, _)| *l)
            .collect()
    }

    /// Score of a specific line, if ranked.
    pub fn score_of(&self, line: LineId) -> Option<f64> {
        self.entries
            .iter()
            .find(|(l, _)| *l == line)
            .map(|(_, s)| *s)
    }

    /// 1-based rank of a line (ties share the better rank region as
    /// positioned deterministically).
    pub fn rank_of(&self, line: LineId) -> Option<usize> {
        self.entries
            .iter()
            .position(|(l, _)| *l == line)
            .map(|i| i + 1)
    }

    /// EXAM score: fraction of ranked lines an operator inspects (in rank
    /// order) before reaching `line`. Lower is better; `None` when the
    /// line is unranked.
    pub fn exam_score(&self, line: LineId) -> Option<f64> {
        let rank = self.rank_of(line)?;
        Some(rank as f64 / self.entries.len() as f64)
    }

    /// Number of ranked lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ranking is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Applies a multiplicative prior and re-sorts: each listed line's
    /// score is scaled by its factor (`> 1` boosts, `< 1` dampens),
    /// everything else keeps its score. Used by the repair engine to
    /// fold static evidence — e.g. membership in a violated property's
    /// abstract derivation path (`acr-flow`) — into the spectrum
    /// ranking without touching the SBFL formula itself.
    pub fn with_prior(self, prior: &std::collections::BTreeMap<LineId, f64>) -> Ranking {
        if prior.is_empty() {
            return self;
        }
        Ranking::new(
            self.entries
                .into_iter()
                .map(|(line, score)| match prior.get(&line) {
                    Some(factor) => (line, score * factor),
                    None => (line, score),
                })
                .collect(),
        )
    }
}

impl fmt::Display for Ranking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (line, score)) in self.entries.iter().enumerate() {
            writeln!(f, "{:>3}. {line}  {score:.4}", i + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_net_types::RouterId;

    fn l(r: u32, n: u32) -> LineId {
        LineId::new(RouterId(r), n)
    }

    #[test]
    fn sorted_descending_with_deterministic_ties() {
        let r = Ranking::new(vec![(l(0, 2), 0.5), (l(0, 1), 0.9), (l(1, 1), 0.5)]);
        assert_eq!(r.top(), Some((l(0, 1), 0.9)));
        assert_eq!(r.entries()[1].0, l(0, 2), "tie broken by line id");
        assert_eq!(r.entries()[2].0, l(1, 1));
        assert_eq!(r.rank_of(l(1, 1)), Some(3));
        assert_eq!(r.rank_of(l(9, 9)), None);
    }

    #[test]
    fn top_tied_returns_all_maxima() {
        let r = Ranking::new(vec![(l(0, 1), 0.67), (l(1, 5), 0.67), (l(0, 2), 0.5)]);
        assert_eq!(r.top_tied(), vec![l(0, 1), l(1, 5)]);
        assert_eq!(r.top_k(2).len(), 2);
        assert_eq!(r.top_k(99).len(), 3);
    }

    #[test]
    fn exam_score_is_rank_fraction() {
        let r = Ranking::new(vec![
            (l(0, 1), 0.9),
            (l(0, 2), 0.8),
            (l(0, 3), 0.1),
            (l(0, 4), 0.0),
        ]);
        assert_eq!(r.exam_score(l(0, 1)), Some(0.25));
        assert_eq!(r.exam_score(l(0, 4)), Some(1.0));
        assert_eq!(r.exam_score(l(9, 9)), None);
    }

    #[test]
    fn prior_rescales_and_resorts() {
        let r = Ranking::new(vec![(l(0, 1), 0.8), (l(0, 2), 0.7), (l(0, 3), 0.1)]);
        let prior = std::collections::BTreeMap::from([(l(0, 2), 1.5)]);
        let boosted = r.clone().with_prior(&prior);
        assert_eq!(boosted.top(), Some((l(0, 2), 0.7 * 1.5)));
        assert_eq!(boosted.rank_of(l(0, 1)), Some(2));
        // An empty prior is the identity.
        assert_eq!(r.clone().with_prior(&Default::default()), r);
    }

    #[test]
    fn empty_ranking() {
        let r = Ranking::new(vec![]);
        assert!(r.is_empty());
        assert_eq!(r.top(), None);
        assert!(r.top_tied().is_empty());
    }
}
