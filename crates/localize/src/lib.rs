//! # acr-localize
//!
//! Fault localization for network configurations (§4.1 of the paper):
//!
//! - [`sbfl`] — Spectrum-Based Fault Localization. Folds a coverage
//!   matrix into per-line `(passed(s), failed(s))` counters and scores
//!   them with [`SbflFormula::Tarantula`] (the paper's Equation 1) or the
//!   alternatives the paper's §6 mentions as future work (Ochiai, Jaccard,
//!   D*) — implemented here so the ablation benches can compare them.
//! - [`ranking`] — deterministic suspiciousness rankings with EXAM-score
//!   evaluation.
//! - [`cel`] — a CEL-style MaxSAT localizer: every failed test asserts
//!   "some covered line is faulty", every line softly asserts "I am
//!   correct"; a maximal satisfiable subset's complement is a minimal
//!   correction-set candidate.

pub mod cel;
pub mod ranking;
pub mod sbfl;

pub use cel::cel_localize;
pub use ranking::Ranking;
pub use sbfl::{localize, localize_boosted, suspiciousness, SbflFormula};
