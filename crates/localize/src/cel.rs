//! CEL-style MaxSAT localization.
//!
//! CEL (Gember-Jacobson et al., "Localizing router configuration errors
//! using minimal correction sets") frames localization as MaxSAT: assume
//! every configuration line is correct (soft), require that each observed
//! violation be explained by at least one faulty covered line (hard), and
//! read the *correction set* — the softs that cannot be kept — as the
//! localization. Our simplified rendition reuses the SBFL coverage matrix
//! as the explanation structure and the `acr-smt` grow-MSS as the engine.

use acr_cfg::LineId;
use acr_prov::CoverageMatrix;
use acr_smt::{Formula, Solver, VarId};
use std::collections::BTreeMap;

/// Localizes by minimal-correction-set: returns candidate faulty lines
/// (the complement of a maximal "everything is correct" subset). Empty
/// when there are no failures. Lines covered by no failed test are never
/// blamed.
pub fn cel_localize(matrix: &CoverageMatrix) -> Vec<LineId> {
    let pool: Vec<LineId> = matrix.failure_covered_lines().into_iter().collect();
    if pool.is_empty() {
        return Vec::new();
    }
    let mut solver = Solver::new();
    let faulty: BTreeMap<LineId, VarId> = pool.iter().map(|l| (*l, solver.new_bool())).collect();

    // Hard: each failed test is explained by some faulty covered line.
    for t in matrix.tests().iter().filter(|t| !t.passed) {
        let clause = Formula::or(
            t.lines
                .iter()
                .filter_map(|l| faulty.get(l))
                .map(|v| Formula::bool_true(*v)),
        );
        solver.assert(clause);
    }

    // Soft: every line is correct. Order softs so lines covered by more
    // passed tests are kept first (they are the least plausible faults),
    // making the correction set favour failure-specific lines.
    let counts = matrix.per_line_counts();
    let mut ordered: Vec<LineId> = pool.clone();
    ordered.sort_by_key(|l| {
        let (p, _) = counts.get(l).copied().unwrap_or((0, 0));
        std::cmp::Reverse(p)
    });
    let softs: Vec<Formula> = ordered
        .iter()
        .map(|l| Formula::not(Formula::bool_true(faulty[l])))
        .collect();

    match solver.maximal_satisfiable_subset(&softs) {
        Some((_, kept)) => {
            let kept_set: std::collections::BTreeSet<usize> = kept.into_iter().collect();
            ordered
                .iter()
                .enumerate()
                .filter(|(i, _)| !kept_set.contains(i))
                .map(|(_, l)| *l)
                .collect()
        }
        None => Vec::new(), // hard constraints unsat: no failure coverage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_net_types::RouterId;
    use acr_prov::{TestCoverage, TestId};

    fn l(n: u32) -> LineId {
        LineId::new(RouterId(0), n)
    }

    fn cov(id: u32, passed: bool, lines: &[u32]) -> TestCoverage {
        TestCoverage {
            test: TestId(id),
            passed,
            lines: lines.iter().map(|n| l(*n)).collect(),
        }
    }

    #[test]
    fn no_failures_blames_nothing() {
        let mut m = CoverageMatrix::new();
        m.push(cov(0, true, &[1, 2]));
        assert!(cel_localize(&m).is_empty());
    }

    #[test]
    fn blames_failure_specific_line() {
        let mut m = CoverageMatrix::new();
        m.push(cov(0, true, &[1, 2]));
        m.push(cov(1, true, &[1]));
        m.push(cov(2, false, &[1, 3]));
        let blamed = cel_localize(&m);
        // Line 1 is covered by two passes; line 3 only by the failure —
        // the correction set should be {3}.
        assert_eq!(blamed, vec![l(3)]);
    }

    #[test]
    fn two_independent_failures_need_two_lines() {
        let mut m = CoverageMatrix::new();
        m.push(cov(0, false, &[1]));
        m.push(cov(1, false, &[2]));
        let blamed = cel_localize(&m);
        assert_eq!(blamed, vec![l(1), l(2)]);
    }

    #[test]
    fn shared_line_explains_both_failures() {
        let mut m = CoverageMatrix::new();
        m.push(cov(0, false, &[1, 9]));
        m.push(cov(1, false, &[2, 9]));
        m.push(cov(2, true, &[1]));
        m.push(cov(3, true, &[2]));
        let blamed = cel_localize(&m);
        // Lines 1 and 2 each carry a pass; 9 carries none — one faulty
        // line (9) explains everything.
        assert_eq!(blamed, vec![l(9)]);
    }
}
