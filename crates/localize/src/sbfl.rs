//! Spectrum-Based Fault Localization formulas.

use crate::ranking::Ranking;
use acr_prov::CoverageMatrix;

/// The SBFL suspiciousness formulas implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SbflFormula {
    /// The paper's Equation 1 (Jones & Harrold).
    Tarantula,
    /// `failed / sqrt(totalfailed * (failed + passed))`.
    Ochiai,
    /// `failed / (totalfailed + passed)`.
    Jaccard,
    /// `failed^star / (passed + (totalfailed - failed))`; D* with the
    /// conventional star = 2 is `DStar(2)`.
    DStar(u32),
}

impl std::fmt::Display for SbflFormula {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SbflFormula::Tarantula => f.write_str("tarantula"),
            SbflFormula::Ochiai => f.write_str("ochiai"),
            SbflFormula::Jaccard => f.write_str("jaccard"),
            SbflFormula::DStar(k) => write!(f, "d-star({k})"),
        }
    }
}

/// Scores one statement from its spectrum counters.
///
/// `passed_s` / `failed_s` are the numbers of passed / failed tests
/// covering the statement; `total_passed` / `total_failed` are suite-wide
/// totals. All formulas return 0 when there are no failed tests (nothing
/// is suspicious in a healthy network), and cap division-by-zero cases at
/// `f64::INFINITY` only where the literature does (D*).
pub fn suspiciousness(
    formula: SbflFormula,
    passed_s: usize,
    failed_s: usize,
    total_passed: usize,
    total_failed: usize,
) -> f64 {
    if total_failed == 0 || failed_s == 0 {
        // A line never covered by a failure cannot explain the failure.
        return 0.0;
    }
    let (p, f, tp, tf) = (
        passed_s as f64,
        failed_s as f64,
        total_passed as f64,
        total_failed as f64,
    );
    match formula {
        SbflFormula::Tarantula => {
            let fail_ratio = f / tf;
            let pass_ratio = if total_passed == 0 { 0.0 } else { p / tp };
            fail_ratio / (pass_ratio + fail_ratio)
        }
        SbflFormula::Ochiai => f / (tf * (f + p)).sqrt(),
        SbflFormula::Jaccard => f / (tf + p),
        SbflFormula::DStar(star) => {
            let denom = p + (tf - f);
            if denom == 0.0 {
                f64::INFINITY
            } else {
                f.powi(star as i32) / denom
            }
        }
    }
}

/// Scores every covered line of a coverage matrix.
pub fn localize(matrix: &CoverageMatrix, formula: SbflFormula) -> Ranking {
    let (total_passed, total_failed) = matrix.totals();
    let entries = matrix
        .per_line_counts()
        .into_iter()
        .map(|(line, (p, f))| {
            (
                line,
                suspiciousness(formula, p, f, total_passed, total_failed),
            )
        })
        .collect();
    Ranking::new(entries)
}

/// Scores every covered line, multiplying suspiciousness by a per-line
/// boost factor (static-analysis hits from `acr-lint` feed in here).
///
/// Lines absent from `boosts` keep their spectrum score (factor 1). A
/// boosted line whose spectrum score is 0 — typically a line a static
/// rule flagged but no failing probe covered — receives a floor of
/// `0.05 * factor` so it enters the ranking instead of being invisible
/// to the template stage.
pub fn localize_boosted(
    matrix: &CoverageMatrix,
    formula: SbflFormula,
    boosts: &std::collections::BTreeMap<acr_cfg::LineId, f64>,
) -> Ranking {
    let (total_passed, total_failed) = matrix.totals();
    let mut entries: Vec<(acr_cfg::LineId, f64)> = matrix
        .per_line_counts()
        .into_iter()
        .map(|(line, (p, f))| {
            let base = suspiciousness(formula, p, f, total_passed, total_failed);
            let factor = boosts.get(&line).copied().unwrap_or(1.0);
            let score = if base > 0.0 {
                base * factor
            } else if factor > 1.0 {
                0.05 * factor
            } else {
                base
            };
            (line, score)
        })
        .collect();
    // Flagged lines the spectrum never saw still deserve a slot.
    let covered: std::collections::BTreeSet<_> = entries.iter().map(|(l, _)| *l).collect();
    for (&line, &factor) in boosts {
        if factor > 1.0 && !covered.contains(&line) {
            entries.push((line, 0.05 * factor));
        }
    }
    Ranking::new(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_cfg::LineId;
    use acr_net_types::RouterId;
    use acr_prov::{TestCoverage, TestId};

    /// §5 worked example: failed(s)=1, passed(s)=1, totals (2 passed,
    /// 1 failed) ⇒ Tarantula = 0.67.
    #[test]
    fn tarantula_matches_worked_example() {
        let s = suspiciousness(SbflFormula::Tarantula, 1, 1, 2, 1);
        assert!((s - 2.0 / 3.0).abs() < 1e-9, "{s}");
        // A line covered by all three tests scores 0.5.
        let s = suspiciousness(SbflFormula::Tarantula, 2, 1, 2, 1);
        assert!((s - 0.5).abs() < 1e-9, "{s}");
        // Covered only by the failed test: 1.0.
        let s = suspiciousness(SbflFormula::Tarantula, 0, 1, 2, 1);
        assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn all_formulas_zero_without_failures() {
        for f in [
            SbflFormula::Tarantula,
            SbflFormula::Ochiai,
            SbflFormula::Jaccard,
            SbflFormula::DStar(2),
        ] {
            assert_eq!(suspiciousness(f, 3, 0, 5, 0), 0.0, "{f}");
            assert_eq!(suspiciousness(f, 0, 0, 5, 2), 0.0, "{f} uncovered");
        }
    }

    #[test]
    fn ochiai_jaccard_dstar_values() {
        // failed=2, passed=1, tf=2, tp=3.
        let o = suspiciousness(SbflFormula::Ochiai, 1, 2, 3, 2);
        assert!((o - 2.0 / (2.0f64 * 3.0).sqrt()).abs() < 1e-9);
        let j = suspiciousness(SbflFormula::Jaccard, 1, 2, 3, 2);
        assert!((j - 2.0 / 3.0).abs() < 1e-9);
        let d = suspiciousness(SbflFormula::DStar(2), 1, 2, 3, 2);
        assert!((d - 4.0).abs() < 1e-9);
        // D* divide-by-zero: covered by every failure, no passes.
        let d = suspiciousness(SbflFormula::DStar(2), 0, 2, 3, 2);
        assert!(d.is_infinite());
    }

    #[test]
    fn tarantula_with_no_passed_tests() {
        // Only failures in the suite: every failure-covered line scores 1.
        let s = suspiciousness(SbflFormula::Tarantula, 0, 1, 0, 1);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn localize_ranks_fault_covering_line_first() {
        let l = |n: u32| LineId::new(RouterId(0), n);
        let mut m = CoverageMatrix::new();
        // Line 3 covered only by the failure; line 1 by everything.
        m.push(TestCoverage {
            test: TestId(0),
            passed: true,
            lines: [l(1)].into(),
        });
        m.push(TestCoverage {
            test: TestId(1),
            passed: true,
            lines: [l(1), l(2)].into(),
        });
        m.push(TestCoverage {
            test: TestId(2),
            passed: false,
            lines: [l(1), l(3)].into(),
        });
        let ranking = localize(&m, SbflFormula::Tarantula);
        assert_eq!(ranking.top().unwrap().0, l(3));
        assert!(ranking.score_of(l(3)).unwrap() > ranking.score_of(l(1)).unwrap());
        assert_eq!(ranking.score_of(l(2)), Some(0.0));
    }

    #[test]
    fn boosted_localization_reorders_and_floors() {
        let l = |n: u32| LineId::new(RouterId(0), n);
        let mut m = CoverageMatrix::new();
        m.push(TestCoverage {
            test: TestId(0),
            passed: true,
            lines: [l(1)].into(),
        });
        m.push(TestCoverage {
            test: TestId(1),
            passed: false,
            lines: [l(1), l(2), l(3)].into(),
        });
        let plain = localize(&m, SbflFormula::Tarantula);
        // Lines 2 and 3 tie on the spectrum alone.
        assert_eq!(plain.score_of(l(2)), plain.score_of(l(3)));

        let boosts = [(l(3), 4.0), (l(9), 2.0)].into_iter().collect();
        let boosted = localize_boosted(&m, SbflFormula::Tarantula, &boosts);
        // The lint-flagged line now outranks its spectrum twin.
        assert!(boosted.score_of(l(3)).unwrap() > boosted.score_of(l(2)).unwrap());
        assert_eq!(boosted.top().unwrap().0, l(3));
        // A flagged line the spectrum never covered gets the floor score.
        assert!((boosted.score_of(l(9)).unwrap() - 0.1).abs() < 1e-9);
        // Unflagged lines keep their plain scores.
        assert_eq!(boosted.score_of(l(1)), plain.score_of(l(1)));
    }
}
