//! # ACR — Automatic Configuration Repair
//!
//! A from-scratch reproduction of *Automatic Configuration Repair*
//! (HotNets '24): the **localize–fix–validate** approach to repairing
//! router configurations, together with every substrate it needs — a
//! BGP control-plane simulator with oscillation detection, a DNA-style
//! incremental verifier, provenance-based coverage, spectrum-based fault
//! localization, a finite-domain constraint solver for local
//! symbolization, the MetaProv/AED baselines it is compared against,
//! workload generators reproducing the paper's Figure 2 incident and
//! Table 1 misconfiguration taxonomy, and a zero-dependency
//! observability layer (tracing, metrics, run journal — see [`obs`]).
//!
//! ## Quickstart
//!
//! ```
//! use acr::prelude::*;
//!
//! // The paper's Figure 2 incident: 10.0/16 flaps because the
//! // `default_all` prefix lists on routers A and C match everything.
//! let fig2 = acr::workloads::fig2::fig2_incident();
//!
//! // Localize–fix–validate finds a feasible update.
//! let engine = RepairEngine::with_defaults(&fig2.topo, &fig2.spec);
//! let report = engine.repair(&fig2.broken);
//! assert!(report.outcome.is_fixed());
//! ```
//!
//! The facade re-exports each layer under a stable name; see the README
//! for the architecture map and `EXPERIMENTS.md` for the paper-artifact
//! index.

pub use acr_baselines as baselines;
pub use acr_cfg as cfg;
pub use acr_core as core;
pub use acr_lint as lint;
pub use acr_localize as localize;
pub use acr_net_types as net_types;
pub use acr_obs as obs;
pub use acr_prov as prov;
pub use acr_scenarios as scenarios;
pub use acr_sim as sim;
pub use acr_smt as smt;
pub use acr_topo as topo;
pub use acr_verify as verify;
pub use acr_workloads as workloads;

/// The most common imports, bundled.
pub mod prelude {
    pub use acr_cfg::{DeviceConfig, Edit, LineId, NetworkConfig, Patch, Stmt};
    pub use acr_core::{
        AcrStrategy, RepairConfig, RepairEngine, RepairOutcome, RepairStrategy, Strategy,
        StrategyVerdict,
    };
    pub use acr_lint::{lint_network, Diagnostic, LintReport, Rule, Severity};
    pub use acr_localize::{localize, localize_boosted, SbflFormula};
    pub use acr_net_types::{Asn, Flow, Ipv4Addr, Prefix, RouterId};
    pub use acr_scenarios::{corpus, Scenario, ScenarioFamily};
    pub use acr_sim::Simulator;
    pub use acr_topo::{Role, Topology, TopologyBuilder};
    pub use acr_verify::{IncrementalVerifier, ObsMask, Property, Spec, Verifier, Violation};
    pub use acr_workloads::{generate, sample_incidents, try_inject, FaultType};
}
